package coterie

import (
	"testing"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
)

func TestTreeQuorumsDepth0(t *testing.T) {
	qs, err := TreeQuorums(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 || qs[0] != quorum.NewGroup(0) {
		t.Fatalf("depth 0 quorums %v", qs)
	}
}

func TestTreeQuorumsDepth1(t *testing.T) {
	// 3 sites: quorums {0,1}, {0,2}, {1,2} — the majority coterie.
	qs, err := TreeQuorums(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("depth 1: %d quorums", len(qs))
	}
	c := quorum.Coterie(qs)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeQuorumsDepth2Properties(t *testing.T) {
	// 7 sites. The minimal failure-free quorum is a root-to-leaf path of
	// 3 sites; quorums avoiding the root have 4.
	qs, err := TreeQuorums(2)
	if err != nil {
		t.Fatal(err)
	}
	c := quorum.Coterie(qs)
	if err := c.Validate(); err != nil {
		t.Fatalf("tree coterie invalid: %v", err)
	}
	minSize, maxSize := 64, 0
	rootPath := false
	for _, g := range qs {
		if g.Size() < minSize {
			minSize = g.Size()
		}
		if g.Size() > maxSize {
			maxSize = g.Size()
		}
		if g == quorum.NewGroup(0, 1, 3) {
			rootPath = true
		}
	}
	if minSize != 3 {
		t.Fatalf("min quorum size %d, want 3 (root-to-leaf path)", minSize)
	}
	if !rootPath {
		t.Fatal("missing the root-to-leaf path quorum {0,1,3}")
	}
	if maxSize > 4 {
		t.Fatalf("max quorum size %d, want ≤ 4", maxSize)
	}
}

func TestTreeSystemGrants(t *testing.T) {
	s, err := TreeSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	// Root + left child + its left child: a path quorum.
	if !s.GrantWrite(quorum.NewGroup(0, 1, 3)) {
		t.Fatal("path quorum denied")
	}
	// All four leaves: contains a quorum of both subtrees ({3,4} and
	// {5,6} quorums need their subtree roots... leaves alone: left
	// subtree quorum without node 1 is {3,4}; right without 2 is {5,6}.
	if !s.GrantWrite(quorum.NewGroup(3, 4, 5, 6)) {
		t.Fatal("all-leaves quorum denied")
	}
	// Two leaves of the same subtree cannot form a quorum.
	if s.GrantWrite(quorum.NewGroup(3, 4)) {
		t.Fatal("left-subtree leaves alone granted")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDepthLimit(t *testing.T) {
	if _, err := TreeQuorums(5); err == nil {
		t.Fatal("depth 5 (63 sites + root overflow) should be rejected")
	}
	if _, err := TreeQuorums(-1); err == nil {
		t.Fatal("negative depth accepted")
	}
}

func TestFanoPlaneProperties(t *testing.T) {
	lines := FanoPlane()
	if len(lines) != 7 {
		t.Fatalf("%d lines", len(lines))
	}
	// Each line has 3 sites; every pair intersects in exactly one site;
	// every site lies on exactly 3 lines.
	onLines := make([]int, 7)
	for i, l := range lines {
		if l.Size() != 3 {
			t.Fatalf("line %d size %d", i, l.Size())
		}
		for _, s := range l.Sites() {
			onLines[s]++
		}
		for j := i + 1; j < len(lines); j++ {
			inter := l & lines[j]
			if inter.Size() != 1 {
				t.Fatalf("lines %d and %d share %d sites", i, j, inter.Size())
			}
		}
	}
	for s, c := range onLines {
		if c != 3 {
			t.Fatalf("site %d lies on %d lines", s, c)
		}
	}
	if err := quorum.Coterie(lines).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFanoAvailabilityOnK7(t *testing.T) {
	// On a reliable-link K7 at p = 0.9 the Fano coterie's availability is
	// competitive with majority voting — in fact slightly better, the
	// classic demonstration (Garcia-Molina & Barbara) that coteries
	// escape the voting framework: some 3-site configurations grant under
	// Fano but not majority, and some 4-site ones vice versa.
	g := graph.Complete(7)
	d, err := Components(g, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	fano, err := d.Availability(FanoSystem(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	maj, err := FromQuorums(quorum.UniformVotes(7), quorum.Majority(7))
	if err != nil {
		t.Fatal(err)
	}
	majA, err := d.Availability(maj, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fano <= 0.8 || fano >= 1 || majA <= 0.8 || majA >= 1 {
		t.Fatalf("implausible availabilities fano=%g majority=%g", fano, majA)
	}
	// Neither dominates structurally. Write side: a full line of 3 grants
	// under Fano, while valid (3,5)-voting needs 5 votes. Read side: any
	// 3-set reads under voting, but Fano reads need a line.
	fs := FanoSystem()
	line := quorum.NewGroup(0, 1, 2)
	if !fs.GrantWrite(line) || maj.GrantWrite(line) {
		t.Fatal("3-site line should grant writes only under Fano")
	}
	nonLine := quorum.NewGroup(0, 1, 3)
	if fs.GrantRead(nonLine) || !maj.GrantRead(nonLine) {
		t.Fatal("non-line 3-set should grant reads only under voting")
	}
	t.Logf("K7, p=0.9, α=0.5: Fano %.4f vs majority %.4f", fano, majA)
}

func TestTreeVsMajorityQuorumSize(t *testing.T) {
	// The tree protocol's selling point: min quorum size 3 vs majority's 4
	// on 7 sites (fewer messages in the common case).
	qs, _ := TreeQuorums(2)
	minTree := 64
	for _, g := range qs {
		if g.Size() < minTree {
			minTree = g.Size()
		}
	}
	if minTree >= 4 {
		t.Fatalf("tree min quorum %d should beat majority's 4", minTree)
	}
}
