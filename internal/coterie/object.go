package coterie

import (
	"fmt"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
)

// Object is a replicated data object whose grant rule is a general coterie
// System rather than a vote count — the executable counterpart of the
// availability analysis in this package. Within a component, copies
// synchronize on every operation (the same §5.1 instantaneous-exchange
// model as the vote-based replica.Object); a read or write is granted iff
// the component's site set contains a read or write group.
//
// Coterie systems have no dynamic reassignment here: unlike vote/quorum
// pairs they carry no natural version-ordered family, which is exactly the
// gap the paper notes in Herlihy's hierarchy (no mechanism for selecting
// and ordering quorums).
type Object struct {
	st     *graph.State
	sys    System
	stamps []int64
	values []int64

	next   int64
	latest int64

	memberBuf []int
}

// NewObject creates the coterie-governed object. The system must be valid
// and the network must have at most 64 sites (Group limit).
func NewObject(st *graph.State, sys System) (*Object, error) {
	if st.Graph().N() > 64 {
		return nil, fmt.Errorf("coterie: object supports ≤ 64 sites, got %d", st.Graph().N())
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := st.Graph().N()
	return &Object{
		st:     st,
		sys:    sys,
		stamps: make([]int64, n),
		values: make([]int64, n),
	}, nil
}

// LatestStamp returns the most recent committed write's stamp.
func (o *Object) LatestStamp() int64 { return o.latest }

// sync refreshes every copy in x's component to the freshest value there
// and returns the members, their group, and the freshest stamp/value.
func (o *Object) sync(x int) (members []int, comp quorum.Group, stamp, value int64) {
	rep := o.st.ComponentOf(x)
	o.memberBuf = o.st.Members(rep, o.memberBuf[:0])
	members = o.memberBuf
	for _, m := range members {
		comp |= quorum.NewGroup(m)
		if o.stamps[m] > stamp {
			stamp, value = o.stamps[m], o.values[m]
		}
	}
	for _, m := range members {
		o.stamps[m], o.values[m] = stamp, value
	}
	return members, comp, stamp, value
}

// Read submits a read at site x.
func (o *Object) Read(x int) (value int64, stamp int64, granted bool) {
	if !o.st.SiteUp(x) {
		return 0, 0, false
	}
	_, comp, stamp, value := o.sync(x)
	if !o.sys.GrantRead(comp) {
		return 0, 0, false
	}
	return value, stamp, true
}

// Write submits a write at site x; on success every copy in the component
// is updated.
func (o *Object) Write(x int, value int64) bool {
	if !o.st.SiteUp(x) {
		return false
	}
	members, comp, _, _ := o.sync(x)
	if !o.sys.GrantWrite(comp) {
		return false
	}
	o.next++
	for _, m := range members {
		o.stamps[m], o.values[m] = o.next, value
	}
	o.latest = o.next
	return true
}

// WriteCapableComponents counts components currently able to write (≤ 1
// for any valid system, by the w-w intersection property — but only while
// every write updates all copies it can reach; the tests assert it).
func (o *Object) WriteCapableComponents() int {
	count := 0
	var reps []int
	reps = o.st.Representatives(reps)
	for _, rep := range reps {
		var comp quorum.Group
		var members []int
		members = o.st.Members(rep, members)
		for _, m := range members {
			comp |= quorum.NewGroup(m)
		}
		if o.sys.GrantWrite(comp) {
			count++
		}
	}
	return count
}
