package coterie

import (
	"testing"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/replica"
	"quorumkit/internal/rng"
)

func TestCoterieObjectBasic(t *testing.T) {
	g := graph.Grid(3, 3)
	st := graph.NewState(g, nil)
	sys, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObject(st, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Write(0, 42) {
		t.Fatal("write denied all-up")
	}
	v, stamp, ok := o.Read(8)
	if !ok || v != 42 || stamp != o.LatestStamp() {
		t.Fatalf("read (%d,%d,%v)", v, stamp, ok)
	}
}

func TestCoterieObjectGridSemantics(t *testing.T) {
	// Isolate the middle row {3,4,5} of the grid: it covers every column,
	// so reads are granted there, but it contains no full column, so
	// writes are denied.
	g := graph.Grid(3, 3)
	st := graph.NewState(g, nil)
	sys, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObject(st, sys)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Write(4, 7) {
		t.Fatal("initial write denied")
	}
	// Cut the row from the rest: fail vertical links around row 1.
	for _, pair := range [][2]int{{0, 3}, {3, 6}, {1, 4}, {4, 7}, {2, 5}, {5, 8}} {
		st.FailLink(g.EdgeIndex(pair[0], pair[1]))
	}
	if v, _, ok := o.Read(4); !ok || v != 7 {
		t.Fatalf("row read (%d,%v); a row covers every column", v, ok)
	}
	if o.Write(4, 8) {
		t.Fatal("row write granted without a full column")
	}
	// The other fragment {0,1,2,6,7,8} (two rows) can read (covers all
	// columns) but also has no full column.
	if _, _, ok := o.Read(0); !ok {
		t.Fatal("two-row fragment read denied")
	}
	if o.Write(0, 9) {
		t.Fatal("two-row fragment write granted")
	}
}

func TestCoterieObjectDownSite(t *testing.T) {
	st := graph.NewState(graph.Complete(7), nil)
	o, err := NewObject(st, FanoSystem())
	if err != nil {
		t.Fatal(err)
	}
	st.FailSite(3)
	if _, _, ok := o.Read(3); ok {
		t.Fatal("down site read")
	}
	if o.Write(3, 1) {
		t.Fatal("down site write")
	}
}

// TestCoterieObjectMatchesVoteObject: with a vote-induced system the
// coterie object and the vote-based replica object make identical
// decisions under an identical schedule.
func TestCoterieObjectMatchesVoteObject(t *testing.T) {
	g := graph.Ring(7)
	a := quorum.Assignment{QR: 3, QW: 5}
	sys, err := FromQuorums(quorum.UniformVotes(7), a)
	if err != nil {
		t.Fatal(err)
	}
	stC := graph.NewState(g, nil)
	stV := graph.NewState(g, nil)
	co, err := NewObject(stC, sys)
	if err != nil {
		t.Fatal(err)
	}
	vo, err := replica.NewObject(stV, a)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(50)
	for step := 0; step < 4000; step++ {
		switch src.Intn(8) {
		case 0:
			i := src.Intn(7)
			stC.FailSite(i)
			stV.FailSite(i)
		case 1:
			i := src.Intn(7)
			stC.RepairSite(i)
			stV.RepairSite(i)
		case 2:
			l := src.Intn(g.M())
			stC.FailLink(l)
			stV.FailLink(l)
		case 3:
			l := src.Intn(g.M())
			stC.RepairLink(l)
			stV.RepairLink(l)
		case 4, 5:
			x := src.Intn(7)
			gc := co.Write(x, int64(step))
			gv := vo.Write(x, int64(step))
			if gc != gv {
				t.Fatalf("step %d: write grants differ %v vs %v", step, gc, gv)
			}
		default:
			x := src.Intn(7)
			vc, sc, okc := co.Read(x)
			vv, sv, okv := vo.Read(x)
			if okc != okv || (okc && (vc != vv || sc != sv)) {
				t.Fatalf("step %d: reads differ (%d,%d,%v) vs (%d,%d,%v)",
					step, vc, sc, okc, vv, sv, okv)
			}
		}
	}
}

// TestCoterieObjectGridSafety: randomized storms on the grid protocol —
// one-copy semantics and the single-writer property must hold.
func TestCoterieObjectGridSafety(t *testing.T) {
	g := graph.Grid(3, 3)
	st := graph.NewState(g, nil)
	sys, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObject(st, sys)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(808)
	for step := 0; step < 8000; step++ {
		switch src.Intn(8) {
		case 0:
			st.FailSite(src.Intn(9))
		case 1:
			st.RepairSite(src.Intn(9))
		case 2:
			st.FailLink(src.Intn(g.M()))
		case 3:
			st.RepairLink(src.Intn(g.M()))
		case 4, 5:
			o.Write(src.Intn(9), int64(step))
		default:
			if _, stamp, ok := o.Read(src.Intn(9)); ok && stamp != o.LatestStamp() {
				t.Fatalf("step %d: stale read under the grid protocol", step)
			}
		}
		if wc := o.WriteCapableComponents(); wc > 1 {
			t.Fatalf("step %d: %d write-capable components", step, wc)
		}
	}
}

func TestCoterieObjectValidation(t *testing.T) {
	st := graph.NewState(graph.Ring(5), nil)
	bad := System{Read: []quorum.Group{quorum.NewGroup(0)}, Write: []quorum.Group{quorum.NewGroup(1)}}
	if _, err := NewObject(st, bad); err == nil {
		t.Fatal("invalid system accepted")
	}
}
