// Package coterie implements general read/write coterie systems — the
// strictly-more-general mechanism the paper points to through its
// references [7] and [8] (Garcia-Molina & Barbara; Cheung, Ahamad &
// Ammar). A vote/quorum pair induces a coterie system, but some coterie
// systems (the grid protocol below, for example) are not induced by any
// vote assignment, and they can dominate voting.
//
// Availability is evaluated exactly on small topologies by enumerating
// failure configurations: an access at site i is granted when i's
// component contains some quorum group of the relevant coterie. This is
// the set-valued generalization of the paper's vote-count criterion, and
// it reduces to the paper's model under vote-induced systems (verified in
// the tests).
package coterie

import (
	"fmt"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
)

// System is a read/write pair of quorum-group sets. Correctness requires:
//
//	(w-w) every two write groups intersect (no concurrent writes), and
//	(r-w) every read group intersects every write group (reads see the
//	      most recent write).
//
// Read groups need not intersect each other.
type System struct {
	Read  []quorum.Group
	Write []quorum.Group
}

// Validate checks the two intersection properties and non-emptiness.
func (s System) Validate() error {
	if len(s.Read) == 0 || len(s.Write) == 0 {
		return fmt.Errorf("coterie: empty read or write group set")
	}
	for i, w := range s.Write {
		if w == 0 {
			return fmt.Errorf("coterie: write group %d empty", i)
		}
		for j := i + 1; j < len(s.Write); j++ {
			if !w.Intersects(s.Write[j]) {
				return fmt.Errorf("coterie: write groups %d and %d disjoint", i, j)
			}
		}
	}
	for i, r := range s.Read {
		if r == 0 {
			return fmt.Errorf("coterie: read group %d empty", i)
		}
		for j, w := range s.Write {
			if !r.Intersects(w) {
				return fmt.Errorf("coterie: read group %d misses write group %d", i, j)
			}
		}
	}
	return nil
}

// GrantRead reports whether a component (as a site set) contains a read
// group.
func (s System) GrantRead(component quorum.Group) bool {
	for _, g := range s.Read {
		if g.Subset(component) {
			return true
		}
	}
	return false
}

// GrantWrite reports whether a component contains a write group.
func (s System) GrantWrite(component quorum.Group) bool {
	for _, g := range s.Write {
		if g.Subset(component) {
			return true
		}
	}
	return false
}

// FromQuorums returns the system induced by a vote assignment and a
// (q_r, q_w) pair: read groups are the minimal sets holding q_r votes,
// write groups the minimal sets holding q_w votes.
func FromQuorums(votes quorum.VoteAssignment, a quorum.Assignment) (System, error) {
	if err := a.Validate(votes.Total()); err != nil {
		return System{}, err
	}
	s := System{
		Read:  quorum.FromVotes(votes, a.QR),
		Write: quorum.FromVotes(votes, a.QW),
	}
	if err := s.Validate(); err != nil {
		return System{}, fmt.Errorf("coterie: induced system invalid: %w", err)
	}
	return s, nil
}

// Grid returns the grid protocol system for rows×cols sites laid out in
// row-major order (site r·cols+c): a read group is one site from every
// column; a write group is a full column plus one site from every other
// column. The system is valid but not induced by any vote assignment for
// grids of at least 3×3.
func Grid(rows, cols int) (System, error) {
	n := rows * cols
	if rows < 1 || cols < 1 || n > 16 {
		// 16 keeps cols^rows enumeration and the exact evaluator tractable.
		return System{}, fmt.Errorf("coterie: grid %dx%d unsupported (need ≤ 16 sites)", rows, cols)
	}
	site := func(r, c int) int { return r*cols + c }

	// All column covers: one site per column → cols choices per column...
	// rows^cols combinations.
	var covers []quorum.Group
	var buildCover func(c int, acc quorum.Group)
	buildCover = func(c int, acc quorum.Group) {
		if c == cols {
			covers = append(covers, acc)
			return
		}
		for r := 0; r < rows; r++ {
			buildCover(c+1, acc|quorum.NewGroup(site(r, c)))
		}
	}
	buildCover(0, 0)

	var s System
	s.Read = append(s.Read, covers...)
	for c := 0; c < cols; c++ {
		var column quorum.Group
		for r := 0; r < rows; r++ {
			column |= quorum.NewGroup(site(r, c))
		}
		for _, cover := range covers {
			s.Write = append(s.Write, column|cover)
		}
	}
	s.Write = Minimize(s.Write)
	if err := s.Validate(); err != nil {
		return System{}, err
	}
	return s, nil
}

// Minimize removes duplicate groups and groups that are supersets of other
// groups, returning the minimal antichain with identical grant behaviour.
func Minimize(groups []quorum.Group) []quorum.Group {
	seen := map[quorum.Group]bool{}
	var uniq []quorum.Group
	for _, g := range groups {
		if !seen[g] {
			seen[g] = true
			uniq = append(uniq, g)
		}
	}
	var out []quorum.Group
	for i, g := range uniq {
		minimal := true
		for j, h := range uniq {
			if i != j && h.Subset(g) && h != g {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, g)
		}
	}
	return out
}

// ReadOneWriteAll returns the ROWA system over n sites: any single site
// reads, only the full set writes.
func ReadOneWriteAll(n int) System {
	var all quorum.Group
	s := System{}
	for i := 0; i < n; i++ {
		g := quorum.NewGroup(i)
		s.Read = append(s.Read, g)
		all |= g
	}
	s.Write = []quorum.Group{all}
	return s
}

// ComponentDist is the exact distribution, for every site, over the site
// set of the component containing it (the set-valued refinement of the
// paper's f_i(v)). Computing it once lets many coterie systems be
// evaluated against the same topology cheaply.
type ComponentDist struct {
	n   int
	per []map[quorum.Group]float64 // per[i][S] = P[component of i = S]; S=0 means down
}

// Components enumerates all up/down configurations of g (site reliability
// p, link reliability r) and returns the exact component-set distribution.
// Requires n ≤ 16 and n+m ≤ 24.
func Components(g *graph.Graph, p, r float64) (*ComponentDist, error) {
	n, m := g.N(), g.M()
	if p < 0 || p > 1 || r < 0 || r > 1 {
		return nil, fmt.Errorf("coterie: reliabilities out of range")
	}
	linkBits := m
	if r == 1 {
		// Perfect links never fail; enumerating their states is pointless.
		linkBits = 0
	}
	if n > 16 || n+linkBits > 24 {
		return nil, fmt.Errorf("coterie: exact evaluation needs n ≤ 16 and n+m ≤ 24, got %d/%d", n, n+linkBits)
	}
	st := graph.NewState(g, nil)
	d := &ComponentDist{n: n, per: make([]map[quorum.Group]float64, n)}
	for i := range d.per {
		d.per[i] = map[quorum.Group]float64{}
	}
	total := 1 << uint(n+linkBits)
	members := make([]int, 0, n)
	for mask := 0; mask < total; mask++ {
		prob := 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				prob *= p
				st.RepairSite(i)
			} else {
				prob *= 1 - p
				st.FailSite(i)
			}
		}
		for l := 0; l < linkBits; l++ {
			if mask&(1<<uint(n+l)) != 0 {
				prob *= r
				st.RepairLink(l)
			} else {
				prob *= 1 - r
				st.FailLink(l)
			}
		}
		if prob == 0 {
			continue
		}
		var reps []int
		reps = st.Representatives(reps)
		for _, rep := range reps {
			members = st.Members(rep, members[:0])
			var comp quorum.Group
			for _, site := range members {
				comp |= quorum.NewGroup(site)
			}
			for _, site := range members {
				d.per[site][comp] += prob
			}
		}
	}
	return d, nil
}

// SiteAvailability returns, for each site, the probability that an access
// submitted there is granted under the system (reads with probability
// alpha, writes otherwise). Down sites deny everything.
func (d *ComponentDist) SiteAvailability(s System, alpha float64) ([]float64, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("coterie: α=%g out of [0,1]", alpha)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, d.n)
	for i, dist := range d.per {
		for comp, prob := range dist {
			grant := 0.0
			if s.GrantRead(comp) {
				grant += alpha
			}
			if s.GrantWrite(comp) {
				grant += 1 - alpha
			}
			out[i] += prob * grant
		}
	}
	return out, nil
}

// Availability returns the uniform-access ACC availability of the system.
func (d *ComponentDist) Availability(s System, alpha float64) (float64, error) {
	per, err := d.SiteAvailability(s, alpha)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, a := range per {
		sum += a
	}
	return sum / float64(d.n), nil
}

// Availability computes the exact ACC availability of a coterie system on
// a topology in one call; use Components directly to evaluate several
// systems against one topology.
func Availability(g *graph.Graph, p, r float64, s System, alpha float64) (float64, error) {
	d, err := Components(g, p, r)
	if err != nil {
		return 0, err
	}
	return d.Availability(s, alpha)
}

// SiteAvailability is the one-call per-site variant of Availability.
func SiteAvailability(g *graph.Graph, p, r float64, s System, alpha float64) ([]float64, error) {
	d, err := Components(g, p, r)
	if err != nil {
		return nil, err
	}
	return d.SiteAvailability(s, alpha)
}

// VoteInducible reports whether the system's write coterie can be realized
// by some vote assignment with per-site votes in [0, maxVotes] and a write
// quorum — a brute-force check used to certify that a coterie (like the
// grid) genuinely escapes the voting framework.
func VoteInducible(s System, n, maxVotes int) bool {
	if n > 9 {
		panic(fmt.Sprintf("coterie: VoteInducible supports ≤ 9 sites, got %d", n))
	}
	target := Minimize(s.Write)
	votes := make(quorum.VoteAssignment, n)
	var try func(i int) bool
	try = func(i int) bool {
		if i == n {
			total := votes.Total()
			if total == 0 {
				return false
			}
			for q := total/2 + 1; q <= total; q++ {
				// Cheap necessary conditions before the exponential
				// FromVotes: every target group must meet q and be minimal
				// (dropping its lightest member falls below q).
				ok := true
				for _, g := range target {
					sum, minV := 0, 1<<30
					for _, site := range g.Sites() {
						sum += votes[site]
						if votes[site] < minV {
							minV = votes[site]
						}
					}
					if sum < q || sum-minV >= q {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				induced := quorum.FromVotes(votes, q)
				if sameGroups(induced, target) {
					return true
				}
			}
			return false
		}
		for v := 0; v <= maxVotes; v++ {
			votes[i] = v
			if try(i + 1) {
				return true
			}
		}
		votes[i] = 0
		return false
	}
	return try(0)
}

func sameGroups(a quorum.Coterie, b []quorum.Group) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[quorum.Group]bool{}
	for _, g := range a {
		set[g] = true
	}
	for _, g := range b {
		if !set[g] {
			return false
		}
	}
	return true
}
