package coterie

import (
	"math"
	"testing"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
)

func TestSystemValidate(t *testing.T) {
	good := System{
		Read:  []quorum.Group{quorum.NewGroup(0), quorum.NewGroup(1)},
		Write: []quorum.Group{quorum.NewGroup(0, 1)},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	disjointWrites := System{
		Read:  []quorum.Group{quorum.NewGroup(0, 1)},
		Write: []quorum.Group{quorum.NewGroup(0), quorum.NewGroup(1)},
	}
	if err := disjointWrites.Validate(); err == nil {
		t.Fatal("disjoint write groups accepted")
	}
	readMisses := System{
		Read:  []quorum.Group{quorum.NewGroup(2)},
		Write: []quorum.Group{quorum.NewGroup(0, 1)},
	}
	if err := readMisses.Validate(); err == nil {
		t.Fatal("read group missing writes accepted")
	}
	if err := (System{}).Validate(); err == nil {
		t.Fatal("empty system accepted")
	}
	empty := System{Read: []quorum.Group{0}, Write: []quorum.Group{quorum.NewGroup(0)}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty read group accepted")
	}
}

func TestFromQuorums(t *testing.T) {
	votes := quorum.UniformVotes(5)
	s, err := FromQuorums(votes, quorum.Assignment{QR: 2, QW: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Read groups: all 2-subsets (10); write groups: all 4-subsets (5).
	if len(s.Read) != 10 || len(s.Write) != 5 {
		t.Fatalf("groups %d/%d", len(s.Read), len(s.Write))
	}
	if !s.GrantRead(quorum.NewGroup(1, 3)) || s.GrantRead(quorum.NewGroup(2)) {
		t.Fatal("read grant logic")
	}
	if !s.GrantWrite(quorum.NewGroup(0, 1, 2, 3)) || s.GrantWrite(quorum.NewGroup(0, 1, 2)) {
		t.Fatal("write grant logic")
	}
	if _, err := FromQuorums(votes, quorum.Assignment{QR: 1, QW: 3}); err == nil {
		t.Fatal("invalid quorum pair accepted")
	}
}

func TestMinimize(t *testing.T) {
	gs := []quorum.Group{
		quorum.NewGroup(0, 1),
		quorum.NewGroup(0, 1, 2), // superset: dropped
		quorum.NewGroup(0, 1),    // duplicate: dropped
		quorum.NewGroup(2),
	}
	min := Minimize(gs)
	if len(min) != 2 {
		t.Fatalf("minimized to %v", min)
	}
}

func TestGridSystem(t *testing.T) {
	s, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Reads: one site per column → 3^3 = 27 covers.
	if len(s.Read) != 27 {
		t.Fatalf("read groups %d", len(s.Read))
	}
	// Write groups: column ∪ cover, minimized. Each has 3 + 2 sites.
	for _, w := range s.Write {
		if w.Size() != 5 {
			t.Fatalf("write group size %d: %v", w.Size(), w.Sites())
		}
	}
	// Full grid grants everything; a single row grants reads only.
	full := quorum.NewGroup(0, 1, 2, 3, 4, 5, 6, 7, 8)
	row := quorum.NewGroup(3, 4, 5)
	if !s.GrantRead(full) || !s.GrantWrite(full) {
		t.Fatal("full grid must grant all")
	}
	if !s.GrantRead(row) {
		t.Fatal("a full row covers every column: read must be granted")
	}
	if s.GrantWrite(row) {
		t.Fatal("a row contains no full column: write must be denied")
	}
	// A full column alone cannot even read... it can: column covers only
	// its own column. 3 columns needed. Check denial:
	col := quorum.NewGroup(0, 3, 6)
	if s.GrantRead(col) {
		t.Fatal("a single column does not cover all columns")
	}
}

func TestGridNotVoteInducible(t *testing.T) {
	s, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if VoteInducible(s, 9, 3) {
		t.Fatal("the 3x3 grid write coterie should not be vote-inducible (votes ≤ 3)")
	}
	// Control: a majority coterie IS vote-inducible.
	maj := System{
		Read:  quorum.MajorityCoterie(3),
		Write: quorum.MajorityCoterie(3),
	}
	if !VoteInducible(maj, 3, 2) {
		t.Fatal("majority coterie should be vote-inducible")
	}
}

func TestAvailabilityMatchesVoteModel(t *testing.T) {
	// On a vote-induced system the coterie evaluator must agree with the
	// paper's vote-count model computed from exact densities.
	g := graph.Ring(5)
	const p, r = 0.9, 0.8
	a := quorum.Assignment{QR: 2, QW: 4}
	s, err := FromQuorums(quorum.UniformVotes(5), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0, 0.5, 1} {
		got, err := Availability(g, p, r, s, alpha)
		if err != nil {
			t.Fatal(err)
		}
		fs := dist.Exact(g, nil, p, r)
		pmfs := make([]dist.PMF, len(fs))
		copy(pmfs, fs)
		m, err := core.NewModel(nil, nil, pmfs)
		if err != nil {
			t.Fatal(err)
		}
		want := m.AvailabilityFor(alpha, a)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("α=%g: coterie %g vs vote model %g", alpha, got, want)
		}
	}
}

func TestROWASystem(t *testing.T) {
	g := graph.Ring(4)
	s := ReadOneWriteAll(4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	const p, r = 0.9, 0.9
	// Pure reads: availability = p (any up site reads itself).
	got, err := Availability(g, p, r, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-p) > 1e-9 {
		t.Fatalf("ROWA pure-read availability %g, want %g", got, p)
	}
	// Pure writes: need the whole ring connected: p^4·(r^4 + 4r^3(1−r)).
	got, err = Availability(g, p, r, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(p, 4) * (math.Pow(r, 4) + 4*math.Pow(r, 3)*(1-r))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ROWA pure-write availability %g, want %g", got, want)
	}
}

func TestGridVsMajorityOnGridTopology(t *testing.T) {
	// Evaluate the grid protocol against majority voting on the matching
	// 3x3 grid topology. Both must produce sane availabilities, and with a
	// read-heavy workload the grid's cheap reads should at least compete.
	g := graph.Grid(3, 3)
	const p, r = 0.95, 0.95
	grid, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	maj, err := FromQuorums(quorum.UniformVotes(9), quorum.ForReadQuorum(4, 9))
	if err != nil {
		t.Fatal(err)
	}
	// One enumeration, two evaluations.
	d, err := Components(g, p, r)
	if err != nil {
		t.Fatal(err)
	}
	aGrid, err := d.Availability(grid, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	aMaj, err := d.Availability(maj, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if aGrid <= 0 || aGrid >= 1 || aMaj <= 0 || aMaj >= 1 {
		t.Fatalf("implausible availabilities grid=%g majority=%g", aGrid, aMaj)
	}
	t.Logf("3x3 grid topology, α=0.9: grid protocol %.4f vs majority %.4f", aGrid, aMaj)
}

func TestAvailabilitySizeLimit(t *testing.T) {
	g := graph.Complete(8) // 8+28 > 24
	s := ReadOneWriteAll(8)
	if _, err := Availability(g, 0.9, 0.9, s, 0.5); err == nil {
		t.Fatal("oversized evaluation accepted")
	}
}

func TestSiteAvailabilityAsymmetry(t *testing.T) {
	// ROWA on a path: end sites read themselves; writes need everything.
	g := graph.Path(3)
	s := ReadOneWriteAll(3)
	per, err := SiteAvailability(g, 0.9, 0.5, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range per {
		if math.Abs(a-0.9) > 1e-9 {
			t.Fatalf("site %d pure-read availability %g, want 0.9", i, a)
		}
	}
}

func BenchmarkGridAvailability(b *testing.B) {
	g := graph.Grid(3, 3)
	s, err := Grid(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Availability(g, 0.95, 0.95, s, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
