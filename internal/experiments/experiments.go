// Package experiments regenerates every figure and table of the paper's
// evaluation (§5): the availability-versus-read-quorum curves of Figures
// 2–7 (plus the fully-connected topology the paper describes in text), the
// §5.4 write-constraint worked example, and the §5.5 optima-by-read-write-
// ratio analysis. cmd/figures prints them; bench_test.go wraps each in a
// benchmark.
package experiments

import (
	"fmt"
	"io"
	"math"

	"quorumkit/internal/core"
	"quorumkit/internal/quorum"
	"quorumkit/internal/sim"
	"quorumkit/internal/topo"
)

// Alphas are the read fractions plotted in every figure (bottom to top
// curve: 0, .25, .50, .75, 1).
var Alphas = []float64{0, 0.25, 0.50, 0.75, 1}

// FigureSpec identifies one figure of the paper.
type FigureSpec struct {
	ID     string // e.g. "Figure 2"
	Chords int    // chords added to the 101-site ring
}

// Figures lists the paper's evaluation figures. Topology 4949 is not
// plotted in the paper ("nearly identical to topology 256") but is included
// here for the same comparison.
var Figures = []FigureSpec{
	{ID: "Figure 2", Chords: 0},
	{ID: "Figure 3", Chords: 1},
	{ID: "Figure 4", Chords: 2},
	{ID: "Figure 5", Chords: 4},
	{ID: "Figure 6", Chords: 16},
	{ID: "Figure 7", Chords: 256},
	{ID: "Figure 7b (text)", Chords: 4949},
}

// FigureByChords returns the spec with the given chord count.
func FigureByChords(chords int) (FigureSpec, error) {
	for _, f := range Figures {
		if f.Chords == chords {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("experiments: no figure with %d chords", chords)
}

// Series is one availability curve: A(α, q_r) for q_r = 1..⌊T/2⌋.
type Series struct {
	Alpha float64
	Avail []float64 // index 0 ↔ q_r = 1
}

// Best returns the maximizing read quorum and value of the curve
// (ties to the smaller q_r).
func (s Series) Best() (qr int, avail float64) {
	qr, avail = 1, math.Inf(-1)
	for i, a := range s.Avail {
		if a > avail {
			qr, avail = i+1, a
		}
	}
	return qr, avail
}

// FigureResult is a fully-computed figure: the model estimated from one
// simulation of the topology, and one curve per read fraction.
type FigureResult struct {
	Spec   FigureSpec
	Name   string // paper's topology name
	Model  core.Model
	Series []Series
}

// DefaultCollect returns a collection horizon that resolves the curves well
// beyond the paper's ±0.5% target in a few seconds per topology. The
// paper-faithful full batch sizes are available via sim.PaperStudy.
func DefaultCollect(seed uint64) sim.CollectConfig {
	return sim.CollectConfig{
		Mode:     sim.TimeWeighted,
		Accesses: 400_000,
		Warmup:   20_000,
		Seed:     seed,
	}
}

// RunFigure simulates the figure's topology once, estimates the per-site
// densities on-line, and computes every curve with the Figure-1 model —
// precisely the paper's §5 pipeline.
func RunFigure(spec FigureSpec, params sim.Params, cfg sim.CollectConfig) (FigureResult, error) {
	g := topo.Paper(spec.Chords)
	model, _, err := sim.Collect(g, nil, params, cfg)
	if err != nil {
		return FigureResult{}, err
	}
	res := FigureResult{
		Spec:  spec,
		Name:  topo.Name(spec.Chords),
		Model: model,
	}
	for _, alpha := range Alphas {
		res.Series = append(res.Series, Series{Alpha: alpha, Avail: model.Curve(alpha)})
	}
	return res, nil
}

// WriteCSV emits a figure's curves as CSV (one row per read quorum, one
// availability column per α) for external plotting.
func WriteCSV(w io.Writer, res FigureResult) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\nq_r", res.Spec.ID, res.Name); err != nil {
		return err
	}
	for _, s := range res.Series {
		if _, err := fmt.Fprintf(w, ",alpha=%.2f", s.Alpha); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	n := len(res.Series[0].Avail)
	for qr := 1; qr <= n; qr++ {
		if _, err := fmt.Fprintf(w, "%d", qr); err != nil {
			return err
		}
		for _, s := range res.Series {
			if _, err := fmt.Fprintf(w, ",%.6f", s.Avail[qr-1]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// EndpointChecks captures the §5.3 structural observations for one figure.
type EndpointChecks struct {
	// AtQR1 holds A(α, 1) per α; the paper observes these are 0.96·α
	// regardless of topology.
	AtQR1 []float64
	// AtMax holds A(α, ⌊T/2⌋) per α; all curves for one topology converge
	// there, so Spread should be small.
	AtMax []float64
	// Spread is max−min of AtMax.
	Spread float64
	// EndpointOptima counts the curves whose maximum lies at q_r = 1 or
	// q_r = ⌊T/2⌋.
	EndpointOptima int
	// MajorityOptima counts the curves maximized at q_r = ⌊T/2⌋.
	MajorityOptima int
	// Curves is the number of curves examined.
	Curves int
}

// CheckEndpoints computes the §5.3 observations for a figure result.
func CheckEndpoints(res FigureResult) EndpointChecks {
	var c EndpointChecks
	last := len(res.Series[0].Avail) - 1
	for _, s := range res.Series {
		c.AtQR1 = append(c.AtQR1, s.Avail[0])
		c.AtMax = append(c.AtMax, s.Avail[last])
		qr, _ := s.Best()
		if qr == 1 || qr == last+1 {
			c.EndpointOptima++
		}
		if qr == last+1 {
			c.MajorityOptima++
		}
		c.Curves++
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, a := range c.AtMax {
		lo, hi = math.Min(lo, a), math.Max(hi, a)
	}
	c.Spread = hi - lo
	return c
}

// WriteConstraintRow is one line of the §5.4 worked example.
type WriteConstraintRow struct {
	Alpha         float64
	Unconstrained core.Result
	MinWrite      float64
	Constrained   core.Result
	// WriteAvailAtOpt is the write availability of the constrained optimum.
	WriteAvailAtOpt float64
}

// WriteConstraint reproduces the §5.4 demonstration on a figure's model:
// the unconstrained optimum (which for α=.75 sits at q_r=1 with q_w=T and
// near-zero write throughput) versus the optimum subject to a write floor.
func WriteConstraint(res FigureResult, alpha, minWrite float64) (WriteConstraintRow, error) {
	m := res.Model
	row := WriteConstraintRow{
		Alpha:         alpha,
		Unconstrained: m.Optimize(alpha),
		MinWrite:      minWrite,
	}
	con, err := m.OptimizeConstrained(alpha, minWrite)
	if err != nil {
		return row, err
	}
	row.Constrained = con
	row.WriteAvailAtOpt = m.Availability(0, con.Assignment.QR)
	return row, nil
}

// OptimaRow classifies the optimum of one (topology, α) pair for the §5.5
// analysis.
type OptimaRow struct {
	Topology string
	Alpha    float64
	BestQR   int
	BestA    float64
	// Class is "q_r=1", "majority", or "interior".
	Class string
	// MajorityA is the availability at the majority assignment, which §5.5
	// observes is frequently the *lowest*.
	MajorityA float64
	// WorstQR is the minimizing read quorum.
	WorstQR int
}

// OptimaTable computes the §5.5 classification for a set of figure results.
func OptimaTable(results []FigureResult) []OptimaRow {
	var out []OptimaRow
	// Classification tolerance: a curve whose maximum exceeds an endpoint
	// by less than this is read as endpoint-optimal (dense topologies have
	// long flat plateaus where the argmax position is estimation noise).
	const eps = 0.002
	for _, res := range results {
		for _, s := range res.Series {
			qr, a := s.Best()
			last := len(s.Avail)
			class := "interior"
			switch {
			case a <= s.Avail[0]+eps:
				class = "q_r=1"
			case a <= s.Avail[last-1]+eps:
				class = "majority"
			}
			worst, worstA := 1, math.Inf(1)
			for i, v := range s.Avail {
				if v < worstA {
					worst, worstA = i+1, v
				}
			}
			out = append(out, OptimaRow{
				Topology:  res.Name,
				Alpha:     s.Alpha,
				BestQR:    qr,
				BestA:     a,
				Class:     class,
				MajorityA: s.Avail[last-1],
				WorstQR:   worst,
			})
		}
	}
	return out
}

// MeasureAssignment cross-validates the model-predicted availability of an
// assignment by direct grant/deny measurement (the §5.2 batched study).
func MeasureAssignment(chords int, a quorum.Assignment, alpha float64,
	params sim.Params, cfg sim.StudyConfig) (sim.Measurement, error) {
	g := topo.Paper(chords)
	return sim.MeasureAvailability(g, nil, params, a, alpha, cfg)
}
