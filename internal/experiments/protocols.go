package experiments

import (
	"fmt"

	"quorumkit/internal/core"
	"quorumkit/internal/quorum"
	"quorumkit/internal/replica"
	"quorumkit/internal/rng"
	"quorumkit/internal/sim"
	"quorumkit/internal/topo"
)

// ProtocolComparison holds paired availability measurements for the
// protocol families the paper situates itself against (§1, §2): static
// quorum consensus at the majority and read-one/write-all endpoints, the
// Figure-1 optimal static assignment, dynamic voting (the paper's
// reference [13], which makes no read/write distinction), and the QR
// dynamic reassignment protocol driven by the on-line optimizer.
//
// All arms are evaluated against the identical failure and access schedule
// (one simulation, every access offered to every protocol), so differences
// are purely protocol effects.
type ProtocolComparison struct {
	Alpha          float64
	Accesses       int64
	StaticMajority float64
	StaticROWA     float64
	StaticOptimal  float64
	OptimalAssign  quorum.Assignment
	DynamicVoting  float64
	QRDynamic      float64
	QRReassigns    int
}

// CompareProtocols runs the paired comparison on one of the paper's
// topologies at the given read fraction.
func CompareProtocols(chords int, alpha float64, accesses int64, seed uint64) (ProtocolComparison, error) {
	if alpha < 0 || alpha > 1 || accesses <= 0 {
		return ProtocolComparison{}, fmt.Errorf("experiments: bad comparison args α=%g n=%d", alpha, accesses)
	}
	g := topo.Paper(chords)
	n := g.N()
	params := sim.PaperParams()

	// Plan the static-optimal arm from an independent calibration run.
	calModel, _, err := sim.Collect(g, nil, params, sim.CollectConfig{
		Mode: sim.TimeWeighted, Accesses: 200_000, Warmup: 10_000, Seed: seed + 9999,
	})
	if err != nil {
		return ProtocolComparison{}, err
	}
	optRes := calModel.Optimize(alpha)

	s := sim.New(g, nil, params, seed)
	st := s.State()
	maj := quorum.Majority(n)
	rowa := quorum.ReadOneWriteAll(n)

	objMaj, err := replica.NewObject(st, maj)
	if err != nil {
		return ProtocolComparison{}, err
	}
	objRowa, err := replica.NewObject(st, rowa)
	if err != nil {
		return ProtocolComparison{}, err
	}
	objOpt, err := replica.NewObject(st, optRes.Assignment)
	if err != nil {
		return ProtocolComparison{}, err
	}
	dyn := replica.NewDynVote(st)
	objQR, err := replica.NewObject(st, maj)
	if err != nil {
		return ProtocolComparison{}, err
	}
	est := core.NewEstimator(n, n)
	mgr := replica.NewManager(objQR, est, alpha)
	mgr.MinWrite = 0.25
	mgr.Hysteresis = 0.02

	coins := rng.New(seed ^ 0xabcdef123456)
	var okMaj, okRowa, okOpt, okDyn, okQR, total int64
	s.OnAccess = func(site, votes int, at float64) {
		est.Observe(site, votes)
		total++
		isRead := coins.Bernoulli(alpha)
		if isRead {
			if _, _, ok := objMaj.Read(site); ok {
				okMaj++
			}
			if _, _, ok := objRowa.Read(site); ok {
				okRowa++
			}
			if _, _, ok := objOpt.Read(site); ok {
				okOpt++
			}
			if _, _, ok := objQR.Read(site); ok {
				okQR++
			}
		} else {
			if objMaj.Write(site, total) {
				okMaj++
			}
			if objRowa.Write(site, total) {
				okRowa++
			}
			if objOpt.Write(site, total) {
				okOpt++
			}
			if objQR.Write(site, total) {
				okQR++
			}
		}
		// Dynamic voting makes no read/write distinction.
		if _, ok := dyn.Access(site, total); ok {
			okDyn++
		}
		if total%2000 == 0 {
			if _, err := mgr.Tick(); err != nil {
				panic(err)
			}
		}
	}
	s.RunAccesses(accesses)

	frac := func(ok int64) float64 { return float64(ok) / float64(total) }
	return ProtocolComparison{
		Alpha:          alpha,
		Accesses:       total,
		StaticMajority: frac(okMaj),
		StaticROWA:     frac(okRowa),
		StaticOptimal:  frac(okOpt),
		OptimalAssign:  optRes.Assignment,
		DynamicVoting:  frac(okDyn),
		QRDynamic:      frac(okQR),
		QRReassigns:    mgr.Reassignments(),
	}, nil
}
