package experiments

import (
	"fmt"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
	"quorumkit/internal/graph"
	"quorumkit/internal/sim"
	"quorumkit/internal/stats"
)

// MismatchStudy quantifies the paper's §4.3 argument for on-line
// estimation: "a static quorum assignment generated off-line using a
// mathematical model reflects the assumptions, such as full link
// reliability or component failure independence, made in order to generate
// the assignments. If any of these assumptions are inaccurate, the quorum
// assignment will be suboptimal."
//
// The study runs a 101-site ring whose failures include *correlated*
// regional shocks (violating the independence every closed form assumes).
// The analytic arm chooses its assignment and predicts its availability
// from the clean closed-form density; the on-line arm estimates the
// density from the shocked system itself. Both assignments are then
// measured by direct simulation under shocks.
type MismatchStudy struct {
	Alpha float64

	AnalyticChoice    core.Result // from the independence-assuming closed form
	AnalyticPredicted float64
	AnalyticActual    stats.Interval // measured under correlated shocks

	OnlineChoice    core.Result // from the on-line estimate of the shocked system
	OnlinePredicted float64
	OnlineActual    stats.Interval
}

// PredictionError returns |predicted − actual| for both arms.
func (m MismatchStudy) PredictionError() (analytic, online float64) {
	analytic = abs(m.AnalyticPredicted - m.AnalyticActual.Mean)
	online = abs(m.OnlinePredicted - m.OnlineActual.Mean)
	return
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ModelMismatch runs the study on the ring with the given shock process.
func ModelMismatch(alpha float64, shock sim.ShockParams, accesses int64, seed uint64) (MismatchStudy, error) {
	if alpha < 0 || alpha > 1 || accesses <= 0 {
		return MismatchStudy{}, fmt.Errorf("experiments: bad mismatch args")
	}
	const n = 101
	g := graph.Ring(n)
	clean := sim.PaperParams()
	shocked := clean
	shocked.Shock = &shock

	// Analytic arm: the paper's closed-form ring density at the nominal
	// reliabilities, which knows nothing about the shocks.
	rel := clean.Reliability()
	analyticModel, err := core.ModelFromSingleDensity(dist.Ring(n, rel, rel))
	if err != nil {
		return MismatchStudy{}, err
	}
	aChoice := analyticModel.Optimize(alpha)

	// On-line arm: estimate the density from the shocked system itself.
	onlineModel, _, err := sim.Collect(g, nil, shocked, sim.CollectConfig{
		Mode: sim.TimeWeighted, Accesses: accesses, Warmup: accesses / 20, Seed: seed + 777,
	})
	if err != nil {
		return MismatchStudy{}, err
	}
	oChoice := onlineModel.Optimize(alpha)

	// Measure both choices under the true (shocked) dynamics.
	cfg := sim.StudyConfig{
		Warmup: accesses / 20, BatchAccesses: accesses / 4,
		MinBatches: 4, MaxBatches: 8, CIHalfWidth: 0.005, Seed: seed,
	}
	aActual, err := sim.MeasureAvailability(g, nil, shocked, aChoice.Assignment, alpha, cfg)
	if err != nil {
		return MismatchStudy{}, err
	}
	oActual, err := sim.MeasureAvailability(g, nil, shocked, oChoice.Assignment, alpha, cfg)
	if err != nil {
		return MismatchStudy{}, err
	}

	return MismatchStudy{
		Alpha:             alpha,
		AnalyticChoice:    aChoice,
		AnalyticPredicted: aChoice.Availability,
		AnalyticActual:    aActual.Overall,
		OnlineChoice:      oChoice,
		OnlinePredicted:   onlineModel.AvailabilityFor(alpha, oChoice.Assignment),
		OnlineActual:      oActual.Overall,
	}, nil
}

// DefaultShock returns a shock process that takes down roughly a third of
// the ring at a time and is active about a third of the time — a regional
// outage pattern far outside any independence assumption.
func DefaultShock() sim.ShockParams {
	return sim.ShockParams{Mean: 48, Size: 30, Duration: 24}
}
