package experiments

import "testing"

func TestCompareProtocolsReadHeavy(t *testing.T) {
	res, err := CompareProtocols(4, 0.9, 60_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses < 60_000 {
		t.Fatalf("accesses %d", res.Accesses)
	}
	for name, a := range map[string]float64{
		"majority": res.StaticMajority,
		"rowa":     res.StaticROWA,
		"optimal":  res.StaticOptimal,
		"dynvote":  res.DynamicVoting,
		"qr":       res.QRDynamic,
	} {
		if a < 0 || a > 1 {
			t.Fatalf("%s availability %g", name, a)
		}
	}
	// The planned static optimum must not lose to both fixed endpoints
	// (it was optimized for this α on this topology).
	if res.StaticOptimal+0.03 < res.StaticMajority && res.StaticOptimal+0.03 < res.StaticROWA {
		t.Fatalf("static optimal %g below both endpoints (%g, %g)",
			res.StaticOptimal, res.StaticMajority, res.StaticROWA)
	}
	// Read-heavy on a sparse topology: ROWA beats majority (paper Fig. 5).
	if res.StaticROWA <= res.StaticMajority {
		t.Fatalf("α=0.9 on topology 4: ROWA %g should beat majority %g",
			res.StaticROWA, res.StaticMajority)
	}
}

func TestCompareProtocolsWriteHeavy(t *testing.T) {
	res, err := CompareProtocols(4, 0.1, 60_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Write-heavy: majority beats ROWA (whose writes need all 101 copies).
	if res.StaticMajority <= res.StaticROWA {
		t.Fatalf("α=0.1: majority %g should beat ROWA %g",
			res.StaticMajority, res.StaticROWA)
	}
	// Dynamic voting treats everything as writes and shrinks with the
	// surviving partition; at α=0.1 it should at least compete with
	// static majority.
	if res.DynamicVoting < res.StaticMajority-0.1 {
		t.Fatalf("dynamic voting %g far below static majority %g",
			res.DynamicVoting, res.StaticMajority)
	}
}

func TestCompareProtocolsValidation(t *testing.T) {
	if _, err := CompareProtocols(0, 1.5, 100, 1); err == nil {
		t.Fatal("bad α accepted")
	}
	if _, err := CompareProtocols(0, 0.5, 0, 1); err == nil {
		t.Fatal("zero horizon accepted")
	}
}
