package experiments

import (
	"math"
	"strings"
	"testing"

	"quorumkit/internal/quorum"
	"quorumkit/internal/sim"
)

// quickCollect is a small horizon for unit tests; the figure-quality runs
// live in cmd/figures and the benchmarks.
func quickCollect(seed uint64) sim.CollectConfig {
	return sim.CollectConfig{
		Mode:     sim.TimeWeighted,
		Accesses: 60_000,
		Warmup:   5_000,
		Seed:     seed,
	}
}

func TestFigureByChords(t *testing.T) {
	f, err := FigureByChords(16)
	if err != nil || f.ID != "Figure 6" {
		t.Fatalf("%v %v", f, err)
	}
	if _, err := FigureByChords(3); err == nil {
		t.Fatal("unknown chord count should error")
	}
}

func TestRunFigureRing(t *testing.T) {
	spec, _ := FigureByChords(0)
	res, err := RunFigure(spec, sim.PaperParams(), quickCollect(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(Alphas) {
		t.Fatalf("%d series", len(res.Series))
	}
	if got := len(res.Series[0].Avail); got != 50 {
		t.Fatalf("curve has %d points", got)
	}
	checks := CheckEndpoints(res)
	// §5.3: A(α, 1) = 0.96·α.
	for i, alpha := range Alphas {
		want := 0.96 * alpha
		if math.Abs(checks.AtQR1[i]-want) > 0.02 {
			t.Fatalf("A(%g, 1) = %g, want %g", alpha, checks.AtQR1[i], want)
		}
	}
	// §5.3: all curves converge at q_r = 50.
	if checks.Spread > 0.02 {
		t.Fatalf("curves do not converge at q_r=50: spread %g", checks.Spread)
	}
	if checks.Curves != 5 {
		t.Fatalf("curves %d", checks.Curves)
	}
}

func TestRingCurvesOrderedByAlpha(t *testing.T) {
	// On a sparse topology reads are easier than writes, so at small q_r
	// availability must increase with α.
	spec, _ := FigureByChords(0)
	res, err := RunFigure(spec, sim.PaperParams(), quickCollect(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Avail[0] < res.Series[i-1].Avail[0]-1e-9 {
			t.Fatalf("A(α,1) not increasing in α: %g then %g",
				res.Series[i-1].Avail[0], res.Series[i].Avail[0])
		}
	}
}

func TestWriteConstraintDemo(t *testing.T) {
	// §5.4 runs on the Figure 4 topology (2 chords) at α = 75%: the
	// unconstrained optimum is q_r = 1 with availability ≈ 0.72 = 0.96·0.75,
	// and a 20% write floor forces q_r up with availability near 50%.
	spec, _ := FigureByChords(2)
	res, err := RunFigure(spec, sim.PaperParams(), quickCollect(4))
	if err != nil {
		t.Fatal(err)
	}
	row, err := WriteConstraint(res, 0.75, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if row.Unconstrained.Assignment.QR != 1 {
		t.Fatalf("unconstrained optimum at q_r=%d", row.Unconstrained.Assignment.QR)
	}
	if math.Abs(row.Unconstrained.Availability-0.72) > 0.03 {
		t.Fatalf("unconstrained availability %g, paper 0.72", row.Unconstrained.Availability)
	}
	if row.WriteAvailAtOpt < 0.20 {
		t.Fatalf("write floor violated: %g", row.WriteAvailAtOpt)
	}
	if row.Constrained.Assignment.QR <= 1 {
		t.Fatal("constraint should push q_r above 1")
	}
	if row.Constrained.Availability > row.Unconstrained.Availability {
		t.Fatal("constrained availability exceeds unconstrained")
	}
}

func TestOptimaTable(t *testing.T) {
	spec0, _ := FigureByChords(0)
	res0, err := RunFigure(spec0, sim.PaperParams(), quickCollect(5))
	if err != nil {
		t.Fatal(err)
	}
	rows := OptimaTable([]FigureResult{res0})
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Class != "q_r=1" && r.Class != "majority" && r.Class != "interior" {
			t.Fatalf("bad class %q", r.Class)
		}
		if r.BestQR < 1 || r.BestQR > 50 {
			t.Fatalf("bad best %d", r.BestQR)
		}
		if r.BestA+1e-9 < r.MajorityA {
			t.Fatalf("best %g below majority %g", r.BestA, r.MajorityA)
		}
	}
	// α = 0 on any topology: pure writes, reads ignored; availability is
	// the write tail which rises with q_r, so the optimum is the majority
	// endpoint.
	if rows[0].Alpha != 0 || rows[0].Class != "majority" {
		t.Fatalf("α=0 row: %+v", rows[0])
	}
	// α = 1 on a sparse ring: pure reads, optimum at q_r = 1.
	last := rows[len(rows)-1]
	if last.Alpha != 1 || last.BestQR != 1 {
		t.Fatalf("α=1 row: %+v", last)
	}
}

func TestMeasureAssignmentAgreesWithModel(t *testing.T) {
	// Direct grant counting on topology 0 must agree with the model-based
	// curve within simulation noise.
	spec, _ := FigureByChords(0)
	res, err := RunFigure(spec, sim.PaperParams(), quickCollect(6))
	if err != nil {
		t.Fatal(err)
	}
	const alpha = 0.5
	a := quorum.Assignment{QR: 10, QW: 92}
	meas, err := MeasureAssignment(0, a, alpha, sim.PaperParams(), sim.StudyConfig{
		Warmup: 5_000, BatchAccesses: 50_000,
		MinBatches: 3, MaxBatches: 6, CIHalfWidth: 0.01, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Model.Availability(alpha, a.QR)
	if math.Abs(meas.Overall.Mean-want) > 0.03 {
		t.Fatalf("measured %v vs model %g", meas.Overall, want)
	}
}

func TestWriteCSV(t *testing.T) {
	spec, _ := FigureByChords(0)
	res, err := RunFigure(spec, sim.PaperParams(), quickCollect(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Comment + header + 50 data rows.
	if len(lines) != 52 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "q_r,alpha=0.00") {
		t.Fatalf("header %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1,") {
		t.Fatalf("first row %q", lines[2])
	}
	cols := strings.Split(lines[2], ",")
	if len(cols) != 1+len(Alphas) {
		t.Fatalf("%d columns", len(cols))
	}
}

func TestSeriesBest(t *testing.T) {
	s := Series{Alpha: 0.5, Avail: []float64{0.3, 0.8, 0.8, 0.1}}
	qr, a := s.Best()
	if qr != 2 || a != 0.8 {
		t.Fatalf("best (%d, %g)", qr, a)
	}
}

func TestDefaultCollect(t *testing.T) {
	c := DefaultCollect(7)
	if c.Mode != sim.TimeWeighted || c.Accesses <= 0 || c.Seed != 7 {
		t.Fatalf("%+v", c)
	}
}
