package experiments

import (
	"testing"

	"quorumkit/internal/core"
	"quorumkit/internal/graph"
	"quorumkit/internal/sim"
)

func TestShockReducesUptime(t *testing.T) {
	// The shock process must actually lower effective site availability.
	g := graph.Ring(21)
	clean := sim.Params{AccessMean: 1, FailMean: 128, RepairMean: 16.0 / 3}
	shocked := clean
	shocked.Shock = &sim.ShockParams{Mean: 40, Size: 7, Duration: 20}

	measure := func(p sim.Params) float64 {
		s := sim.New(g, nil, p, 5)
		est := core.NewEstimator(21, 21)
		s.AttachTimeWeighted(est, nil)
		s.RunUntil(30000)
		return est.Density(0)[0] // P[site down]
	}
	downClean := measure(clean)
	downShocked := measure(shocked)
	if downShocked <= downClean+0.02 {
		t.Fatalf("shocks did not lower uptime: P[down] %g vs %g", downShocked, downClean)
	}
}

func TestShockValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shock params should panic")
		}
	}()
	p := sim.PaperParams()
	p.Shock = &sim.ShockParams{Mean: 0, Size: 1, Duration: 1}
	sim.New(graph.Ring(5), nil, p, 1)
}

func TestShockCorrelation(t *testing.T) {
	// Shocked sites go down together: when a shock is the dominant failure
	// mode, P[two adjacent sites down simultaneously] far exceeds the
	// independent product.
	g := graph.Ring(21)
	p := sim.Params{AccessMean: 1, FailMean: 1e7, RepairMean: 1} // independent failures off
	p.Shock = &sim.ShockParams{Mean: 30, Size: 7, Duration: 10}
	s := sim.New(g, nil, p, 9)
	jointDown, down0, samples := 0, 0, 0
	s.OnAccess = func(site, votes int, at float64) {
		if site != 0 {
			return
		}
		samples++
		st := s.State()
		if !st.SiteUp(0) {
			down0++
			if !st.SiteUp(1) {
				jointDown++
			}
		}
	}
	s.RunAccesses(200_000)
	if down0 == 0 {
		t.Fatal("no down observations")
	}
	pDown := float64(down0) / float64(samples)
	pJointGivenDown := float64(jointDown) / float64(down0)
	// Under independence P[1 down | 0 down] = P[1 down] ≈ pDown; with
	// size-7 shocks on a 21-ring it is ≈ 6/7.
	if pJointGivenDown < 4*pDown {
		t.Fatalf("no correlation: P[adjacent down | down] = %g, base %g", pJointGivenDown, pDown)
	}
}

func TestModelMismatch(t *testing.T) {
	res, err := ModelMismatch(0.5, DefaultShock(), 120_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	aErr, oErr := res.PredictionError()
	// The independence-assuming closed form must mis-predict availability
	// under correlated shocks; the on-line estimate predicts accurately.
	if oErr > 0.04 {
		t.Fatalf("on-line prediction error %g too large", oErr)
	}
	if aErr < 2*oErr {
		t.Fatalf("analytic model should mis-predict: analytic err %g vs online %g", aErr, oErr)
	}
	// The on-line choice can never be meaningfully worse than the analytic
	// choice under the true dynamics (it optimized the true density).
	if res.OnlineActual.Mean < res.AnalyticActual.Mean-0.02 {
		t.Fatalf("on-line choice %v=%g worse than analytic %v=%g",
			res.OnlineChoice.Assignment, res.OnlineActual.Mean,
			res.AnalyticChoice.Assignment, res.AnalyticActual.Mean)
	}
}

func TestModelMismatchValidation(t *testing.T) {
	if _, err := ModelMismatch(2, DefaultShock(), 100, 1); err == nil {
		t.Fatal("bad α accepted")
	}
	if _, err := ModelMismatch(0.5, DefaultShock(), 0, 1); err == nil {
		t.Fatal("zero horizon accepted")
	}
}
