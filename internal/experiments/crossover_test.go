package experiments

import (
	"testing"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
	"quorumkit/internal/sim"
)

func modelFrom(t *testing.T, f dist.PMF) core.Model {
	t.Helper()
	m, err := core.ModelFromSingleDensity(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClassifyOptimumAnalytic(t *testing.T) {
	// Dense network: majority optimal at α=0; read-one at α=1.
	dense := modelFrom(t, dist.Complete(101, 0.96, 0.96))
	if c := ClassifyOptimum(dense, 0, 0.002); c != AtMajority {
		t.Fatalf("dense α=0: %v", c)
	}
	if c := ClassifyOptimum(dense, 1, 0.002); c != AtReadOne {
		t.Fatalf("dense α=1: %v", c)
	}
	// Sparse ring: read-one wins already at moderate α.
	ring := modelFrom(t, dist.Ring(101, 0.96, 0.96))
	if c := ClassifyOptimum(ring, 0.75, 0.002); c != AtReadOne {
		t.Fatalf("ring α=0.75: %v", c)
	}
	if c := ClassifyOptimum(ring, 0, 0.002); c != AtMajority {
		t.Fatalf("ring α=0: %v", c)
	}
}

func TestCrossoverAlphaAnalytic(t *testing.T) {
	ring := modelFrom(t, dist.Ring(101, 0.96, 0.96))
	dense := modelFrom(t, dist.Complete(101, 0.96, 0.96))
	aRing := CrossoverAlpha(ring, 0.002, 0.005)
	aDense := CrossoverAlpha(dense, 0.002, 0.005)
	if aRing <= 0 || aRing >= 1 {
		t.Fatalf("ring crossover %g", aRing)
	}
	if aDense <= aRing {
		t.Fatalf("denser topology should hold majority longer: ring %g vs dense %g",
			aRing, aDense)
	}
	// §5.5: on the ring, read-one already dominates at α=0.25 — so the
	// crossover is below 0.25.
	if aRing >= 0.25 {
		t.Fatalf("ring crossover %g, expected < 0.25", aRing)
	}
	// Monotone switching assumption: majority below, not above.
	if ClassifyOptimum(ring, aRing*0.5, 0.002) != AtMajority {
		t.Fatal("majority not optimal below the crossover")
	}
	if ClassifyOptimum(ring, aRing+0.1, 0.002) == AtMajority {
		t.Fatal("majority still optimal above the crossover")
	}
}

func TestCrossoverDegenerateEnds(t *testing.T) {
	// A density with all mass at T: every assignment perfect, so the
	// optimum ties everywhere; with eps it reads as q_r=1 → crossover 0.
	f := make(dist.PMF, 12)
	f[11] = 1
	m := modelFrom(t, f)
	if a := CrossoverAlpha(m, 0.002, 0.01); a != 0 {
		t.Fatalf("degenerate crossover %g", a)
	}
}

func TestCrossoverTable(t *testing.T) {
	rows, err := CrossoverTable(sim.PaperParams(), quickCollect(12), []int{0, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].Alpha <= rows[0].Alpha {
		t.Fatalf("topology 16 crossover %g should exceed ring %g",
			rows[1].Alpha, rows[0].Alpha)
	}
}

func TestReplicationBenefit(t *testing.T) {
	res, err := ReplicationBenefit(16, 0.75, sim.PaperParams(), quickCollect(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleCopy <= 0 || res.SingleCopy > res.SiteReliabilty+0.02 {
		t.Fatalf("single-copy availability %g (p=%g)", res.SingleCopy, res.SiteReliabilty)
	}
	if res.Replicated.Availability <= res.SingleCopy {
		t.Fatalf("replication should beat a single copy on topology 16 at α=0.75: %g vs %g",
			res.Replicated.Availability, res.SingleCopy)
	}
	if res.Ratio <= 1 {
		t.Fatalf("benefit ratio %g", res.Ratio)
	}
	// §3: ACC can never exceed the submitting site's reliability.
	if res.Replicated.Availability > res.SiteReliabilty+0.02 {
		t.Fatalf("ACC %g exceeds the reliability ceiling %g",
			res.Replicated.Availability, res.SiteReliabilty)
	}
}

func TestOmegaSweep(t *testing.T) {
	m := modelFrom(t, dist.Ring(101, 0.96, 0.96))
	const alpha = 0.75
	omegas := []float64{0, 0.25, 0.5, 1, 2, 4, 8, 32, 128}
	rows := OmegaSweep(m, alpha, omegas)
	if len(rows) != len(omegas) {
		t.Fatalf("%d rows", len(rows))
	}
	// The optimum walks monotonically from the read endpoint (ω=0 →
	// q_r=1) toward the majority endpoint as writes gain weight.
	if rows[0].Assignment.QR != 1 {
		t.Fatalf("ω=0 optimum %v", rows[0].Assignment)
	}
	last := rows[len(rows)-1]
	if last.Assignment.QR != m.MaxReadQuorum() {
		t.Fatalf("ω=%g optimum %v, want majority", last.Omega, last.Assignment)
	}
	prev := 0
	for _, r := range rows {
		if r.Assignment.QR < prev {
			t.Fatalf("ω path not monotone: q_r %d after %d", r.Assignment.QR, prev)
		}
		prev = r.Assignment.QR
		if err := r.Assignment.Validate(101); err != nil {
			t.Fatal(err)
		}
		if r.WriteAvail < 0 || r.ReadAvail > 1 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// Duality with the write-floor technique: the constrained optimum for
	// a floor achieved on the ω path is the same assignment.
	target := rows[4].WriteAvail // some interior point
	if target > 0 {
		con, err := m.OptimizeConstrained(alpha, target)
		if err != nil {
			t.Fatal(err)
		}
		if m.Availability(0, con.Assignment.QR) < target {
			t.Fatal("constrained optimum violates its own floor")
		}
	}
}

func TestOptimumClassString(t *testing.T) {
	if AtMajority.String() != "majority" || AtReadOne.String() != "q_r=1" ||
		Interior.String() != "interior" || OptimumClass(9).String() == "" {
		t.Fatal("class names")
	}
}
