package experiments

import "testing"

func TestLanWanStudy(t *testing.T) {
	rows, err := LanWanStudy(4, 5, 0.5, 80_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	lanwan, ring := rows[0], rows[1]
	if lanwan.Sites != 20 || ring.Sites != 20 {
		t.Fatalf("site counts %d/%d", lanwan.Sites, ring.Sites)
	}
	if lanwan.Links <= ring.Links {
		t.Fatal("clustered topology should have more links than the ring")
	}
	// The clustered deployment is far better connected: its optimal
	// availability dominates the flat ring's at the same size.
	if lanwan.Optimal.Availability <= ring.Optimal.Availability {
		t.Fatalf("clusters %g should beat ring %g",
			lanwan.Optimal.Availability, ring.Optimal.Availability)
	}
	// And majority is viable on the clustered network, hopeless on the ring.
	if lanwan.Majority <= ring.Majority {
		t.Fatalf("cluster majority %g should beat ring majority %g",
			lanwan.Majority, ring.Majority)
	}
	for _, r := range rows {
		if err := r.Optimal.Assignment.Validate(r.Sites); err != nil {
			t.Fatal(err)
		}
		if r.ReadOne < 0 || r.ReadOne > 1 {
			t.Fatalf("%s read-one %g", r.Name, r.ReadOne)
		}
	}
}
