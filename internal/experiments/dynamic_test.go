package experiments

import (
	"testing"
)

func TestDynamicVsStatic(t *testing.T) {
	cfg := DefaultDynamicConfig()
	cfg.AccessesPerPhase = 25_000
	res, err := DynamicVsStatic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleReads != 0 {
		t.Fatalf("stale reads: %d", res.StaleReads)
	}
	if res.Reassignments == 0 {
		t.Fatal("dynamic arm never reassigned")
	}
	// The §4.3 claim: dynamic adjustment beats any single static policy on
	// a workload with strong temporal shifts.
	if res.Dynamic <= res.StaticMajority {
		t.Fatalf("dynamic %.4f should beat static majority %.4f",
			res.Dynamic, res.StaticMajority)
	}
	if res.Dynamic <= res.StaticOptimal {
		t.Fatalf("dynamic %.4f should beat static optimal %.4f (%v)",
			res.Dynamic, res.StaticOptimal, res.StaticOptimalAssignment)
	}
	// Sanity: all availabilities are probabilities.
	for _, a := range []float64{res.StaticMajority, res.StaticOptimal, res.Dynamic} {
		if a <= 0 || a >= 1 {
			t.Fatalf("implausible availability %g", a)
		}
	}
}

func TestDynamicConfigValidation(t *testing.T) {
	cfg := DefaultDynamicConfig()
	cfg.Phases = 1
	if _, err := DynamicVsStatic(cfg); err == nil {
		t.Fatal("single phase accepted")
	}
	cfg = DefaultDynamicConfig()
	cfg.AlphaHigh = 2
	if _, err := DynamicVsStatic(cfg); err == nil {
		t.Fatal("bad α accepted")
	}
}

func TestSurvVsAcc(t *testing.T) {
	res, err := SurvVsAcc(4, 0.5, 60_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// SURV availability is always at least ACC at the same assignment (the
	// largest component dominates any site's component).
	if res.SURVOptimal.Availability+1e-9 < res.ACCOptimal.Availability-0.02 {
		t.Fatalf("SURV optimum %g below ACC optimum %g",
			res.SURVOptimal.Availability, res.ACCOptimal.Availability)
	}
	// Evaluating the SURV-chosen assignment under ACC can only do as well
	// as the ACC optimum.
	if res.ACCofSURVChoice > res.ACCOptimal.Availability+1e-9 {
		t.Fatalf("ACC of SURV choice %g exceeds ACC optimum %g",
			res.ACCofSURVChoice, res.ACCOptimal.Availability)
	}
	if err := res.SURVOptimal.Assignment.Validate(101); err != nil {
		t.Fatal(err)
	}
}
