package experiments

import (
	"fmt"

	"quorumkit/internal/core"
	"quorumkit/internal/quorum"
	"quorumkit/internal/replica"
	"quorumkit/internal/rng"
	"quorumkit/internal/sim"
	"quorumkit/internal/topo"
)

// DynamicStudy compares the §4.3 dynamic quorum reassignment protocol
// against static assignments on a workload whose read-write ratio
// alternates between phases. All three arms see the identical failure and
// access schedule (same simulator seed); only the quorum policy differs.
type DynamicStudy struct {
	// StaticMajority is the overall granted fraction under a fixed
	// majority assignment.
	StaticMajority float64
	// StaticOptimal is the granted fraction under the fixed assignment
	// optimal for the *average* read fraction (the best any static policy
	// informed by the aggregate workload can do off-line).
	StaticOptimal float64
	// StaticOptimalAssignment is that assignment.
	StaticOptimalAssignment quorum.Assignment
	// Dynamic is the granted fraction under the reassignment manager.
	Dynamic float64
	// Reassignments counts installs performed by the dynamic arm.
	Reassignments int
	// StaleReads must be zero: one-copy serializability across all arms.
	StaleReads int
}

// DynamicConfig parameterizes DynamicVsStatic.
type DynamicConfig struct {
	Chords           int     // paper topology selector
	Phases           int     // number of alternating workload phases
	AccessesPerPhase int64   // accesses in each phase
	AlphaHigh        float64 // read fraction of odd phases (read-heavy)
	AlphaLow         float64 // read fraction of even phases (write-heavy)
	Seed             uint64
}

// DefaultDynamicConfig returns a configuration that demonstrates the §4.3
// effect in about a second.
func DefaultDynamicConfig() DynamicConfig {
	return DynamicConfig{
		Chords:           4,
		Phases:           4,
		AccessesPerPhase: 40_000,
		AlphaHigh:        0.9,
		AlphaLow:         0.1,
		Seed:             1,
	}
}

func (c DynamicConfig) validate() error {
	if c.Phases < 2 || c.AccessesPerPhase <= 0 {
		return fmt.Errorf("experiments: bad dynamic config %+v", c)
	}
	if c.AlphaHigh < 0 || c.AlphaHigh > 1 || c.AlphaLow < 0 || c.AlphaLow > 1 {
		return fmt.Errorf("experiments: bad α values %+v", c)
	}
	return nil
}

// runArm simulates one policy arm and returns (granted fraction, stale
// reads, reassignments). If mgr configuration is nil the assignment stays
// fixed at initial.
func runArm(cfg DynamicConfig, initial quorum.Assignment, dynamic bool,
	alphaOf func(phase int) float64) (float64, int, int, error) {
	g := topo.Paper(cfg.Chords)
	n := g.N()
	s := sim.New(g, nil, sim.PaperParams(), cfg.Seed)
	obj, err := replica.NewObject(s.State(), initial)
	if err != nil {
		return 0, 0, 0, err
	}
	var est *core.Estimator
	var mgr *replica.Manager
	if dynamic {
		est = core.NewEstimator(n, n)
		est.SetDecay(0.9998)
		mgr = replica.NewManager(obj, est, alphaOf(0))
		// The write floor keeps every installed assignment's write quorum
		// reachable often enough that the *next* reassignment remains
		// possible — without it the manager drifts to near-ROWA during
		// read-heavy phases and locks itself out (the §5.4 hazard).
		mgr.MinWrite = 0.25
		mgr.Hysteresis = 0.02
	}
	// A dedicated stream for read/write coin flips keeps the simulator's
	// failure/access schedule identical across arms.
	coins := rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	var granted, total, stale int
	alpha := alphaOf(0)
	s.OnAccess = func(site, votes int, at float64) {
		if est != nil {
			est.Age()
			est.Observe(site, votes)
		}
		total++
		if coins.Bernoulli(alpha) {
			if _, stamp, ok := obj.Read(site); ok {
				granted++
				if stamp != obj.LatestStamp() {
					stale++
				}
			}
		} else if obj.Write(site, int64(total)) {
			granted++
		}
		if mgr != nil && s.AccessCount()%2000 == 0 {
			if _, err := mgr.Tick(); err != nil {
				panic(err)
			}
		}
	}
	for phase := 0; phase < cfg.Phases; phase++ {
		alpha = alphaOf(phase)
		if mgr != nil {
			mgr.SetAlpha(alpha)
		}
		s.RunAccesses(cfg.AccessesPerPhase)
	}
	re := 0
	if mgr != nil {
		re = mgr.Reassignments()
	}
	return float64(granted) / float64(total), stale, re, nil
}

// DynamicVsStatic runs the three policy arms and returns the comparison.
func DynamicVsStatic(cfg DynamicConfig) (DynamicStudy, error) {
	if err := cfg.validate(); err != nil {
		return DynamicStudy{}, err
	}
	alphaOf := func(phase int) float64 {
		if phase%2 == 0 {
			return cfg.AlphaHigh
		}
		return cfg.AlphaLow
	}
	g := topo.Paper(cfg.Chords)
	T := g.N()

	// Arm 1: static majority.
	maj, stale1, _, err := runArm(cfg, quorum.Majority(T), false, alphaOf)
	if err != nil {
		return DynamicStudy{}, err
	}

	// Arm 2: static optimal for the average read fraction, chosen from a
	// model fitted to the same topology (off-line planning step).
	avgAlpha := (cfg.AlphaHigh + cfg.AlphaLow) / 2
	model, _, err := sim.Collect(g, nil, sim.PaperParams(), sim.CollectConfig{
		Mode: sim.TimeWeighted, Accesses: 200_000, Warmup: 10_000, Seed: cfg.Seed + 1000,
	})
	if err != nil {
		return DynamicStudy{}, err
	}
	optRes := model.Optimize(avgAlpha)
	opt, stale2, _, err := runArm(cfg, optRes.Assignment, false, alphaOf)
	if err != nil {
		return DynamicStudy{}, err
	}

	// Arm 3: dynamic reassignment.
	dyn, stale3, reassigns, err := runArm(cfg, quorum.Majority(T), true, alphaOf)
	if err != nil {
		return DynamicStudy{}, err
	}

	return DynamicStudy{
		StaticMajority:          maj,
		StaticOptimal:           opt,
		StaticOptimalAssignment: optRes.Assignment,
		Dynamic:                 dyn,
		Reassignments:           reassigns,
		StaleReads:              stale1 + stale2 + stale3,
	}, nil
}

// SurvAccStudy compares the optimal assignments chosen under the two
// availability metrics of §3 on the same topology.
type SurvAccStudy struct {
	// ACCOptimal is the Figure-1 optimum under the ACC metric.
	ACCOptimal core.Result
	// SURVOptimal is the optimum when f is replaced by the distribution of
	// the largest component (footnote 3).
	SURVOptimal core.Result
	// ACCofSURVChoice evaluates the SURV-chosen assignment under ACC —
	// the cost of optimizing for the wrong metric.
	ACCofSURVChoice float64
}

// SurvVsAcc runs one time-weighted simulation recording both the per-site
// and the largest-component vote distributions, and optimizes under each
// metric.
func SurvVsAcc(chords int, alpha float64, accesses int64, seed uint64) (SurvAccStudy, error) {
	g := topo.Paper(chords)
	p := sim.PaperParams()
	s := sim.New(g, nil, p, seed)
	est := core.NewEstimator(g.N(), g.N())
	surv := core.NewSurvEstimator(g.N())
	perUnit := float64(g.N()) / p.AccessMean
	warmT := float64(accesses/20) / perUnit
	runT := float64(accesses) / perUnit
	s.RunUntil(warmT)
	s.AttachTimeWeighted(est, surv)
	s.RunUntil(warmT + runT)

	accModel, err := est.Model(nil, nil)
	if err != nil {
		return SurvAccStudy{}, err
	}
	survModel, err := surv.Model()
	if err != nil {
		return SurvAccStudy{}, err
	}
	accOpt := accModel.Optimize(alpha)
	survOpt := survModel.Optimize(alpha)
	return SurvAccStudy{
		ACCOptimal:      accOpt,
		SURVOptimal:     survOpt,
		ACCofSURVChoice: accModel.AvailabilityFor(alpha, survOpt.Assignment),
	}, nil
}
