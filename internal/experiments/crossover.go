package experiments

import (
	"fmt"

	"quorumkit/internal/core"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/sim"
	"quorumkit/internal/topo"
)

// OptimumClass classifies the optimal assignment for one read fraction.
type OptimumClass int

// Classes of optimum location.
const (
	// AtMajority: the optimum is (within eps) the majority endpoint.
	AtMajority OptimumClass = iota
	// AtReadOne: the optimum is (within eps) the q_r=1 endpoint.
	AtReadOne
	// Interior: the optimum strictly beats both endpoints.
	Interior
)

// String implements fmt.Stringer.
func (c OptimumClass) String() string {
	switch c {
	case AtMajority:
		return "majority"
	case AtReadOne:
		return "q_r=1"
	case Interior:
		return "interior"
	default:
		return fmt.Sprintf("OptimumClass(%d)", int(c))
	}
}

// ClassifyOptimum locates the optimum of A(α, ·), reading near-ties
// (within eps) as endpoint optima.
func ClassifyOptimum(m core.Model, alpha, eps float64) OptimumClass {
	res := m.Optimize(alpha)
	a1 := m.Availability(alpha, 1)
	aMaj := m.Availability(alpha, m.MaxReadQuorum())
	switch {
	case res.Availability <= a1+eps:
		return AtReadOne
	case res.Availability <= aMaj+eps:
		return AtMajority
	default:
		return Interior
	}
}

// CrossoverAlpha finds the read fraction at which the optimal assignment
// leaves the majority endpoint: the largest α for which majority is still
// optimal (within eps). It assumes the empirically-observed monotone
// structure (majority optimal at low α, read-one at high α) and binary
// searches to the given tolerance. Returns 0 when majority is never
// optimal and 1 when it always is.
func CrossoverAlpha(m core.Model, eps, tol float64) float64 {
	isMaj := func(alpha float64) bool {
		return ClassifyOptimum(m, alpha, eps) == AtMajority
	}
	if !isMaj(0) {
		return 0
	}
	if isMaj(1) {
		return 1
	}
	lo, hi := 0.0, 1.0 // invariant: isMaj(lo), !isMaj(hi)
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if isMaj(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// CrossoverRow is one topology's crossover result.
type CrossoverRow struct {
	Topology string
	Chords   int
	Alpha    float64 // majority optimal for read fractions up to here
}

// CrossoverTable computes, for each topology, the read fraction where the
// optimum leaves the majority endpoint — quantifying §5.5's observation
// that denser topologies keep majority optimal across wider read mixes.
func CrossoverTable(params sim.Params, cfg sim.CollectConfig, chordCounts []int) ([]CrossoverRow, error) {
	var out []CrossoverRow
	for _, chords := range chordCounts {
		g := topo.Paper(chords)
		model, _, err := sim.Collect(g, nil, params, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, CrossoverRow{
			Topology: topo.Name(chords),
			Chords:   chords,
			Alpha:    CrossoverAlpha(model, 0.002, 0.01),
		})
	}
	return out, nil
}

// LanWanRow compares a LAN/WAN clustered deployment against a flat ring of
// equal size: same number of sites, very different partition structure
// (clusters rarely split internally; the WAN ring is the fault line).
type LanWanRow struct {
	Name     string
	Sites    int
	Links    int
	Optimal  core.Result
	Majority float64 // availability of the majority assignment
	ReadOne  float64 // availability of read-one/write-all
}

// LanWanStudy evaluates both topologies at the given read fraction with
// the paper's reliability parameters, returning the clustered row first.
func LanWanStudy(clusters, size int, alpha float64, accesses int64, seed uint64) ([]LanWanRow, error) {
	n := clusters * size
	lanwan := topo.Clusters(clusters, size)
	ring := graphRing(n)
	params := sim.PaperParams()
	var out []LanWanRow
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{fmt.Sprintf("%d clusters × %d", clusters, size), lanwan},
		{fmt.Sprintf("ring of %d", n), ring},
	} {
		m, _, err := sim.Collect(tc.g, nil, params, sim.CollectConfig{
			Mode: sim.TimeWeighted, Accesses: accesses, Warmup: accesses / 20, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, LanWanRow{
			Name:     tc.name,
			Sites:    tc.g.N(),
			Links:    tc.g.M(),
			Optimal:  m.Optimize(alpha),
			Majority: m.Availability(alpha, m.MaxReadQuorum()),
			ReadOne:  m.Availability(alpha, 1),
		})
	}
	return out, nil
}

func graphRing(n int) *graph.Graph { return graph.Ring(n) }

// OmegaRow is one point of the §5.4 weighted-objective sweep.
type OmegaRow struct {
	Omega      float64
	Assignment quorum.Assignment
	ReadAvail  float64
	WriteAvail float64
}

// OmegaSweep traces the paper's *first* §5.4 technique — weighting writes
// by ω in the objective A(ω, α, q) — across a grid of weights. The paper
// declines to plot it because "there are infinitely many choices for ω and
// no clear criteria for choosing a value"; the sweep makes the trade-off
// concrete: as ω grows the optimum walks monotonically from the read
// endpoint toward majority, visiting assignments that the second
// (write-floor) technique selects via an interpretable constraint instead.
func OmegaSweep(m core.Model, alpha float64, omegas []float64) []OmegaRow {
	out := make([]OmegaRow, 0, len(omegas))
	for _, omega := range omegas {
		res := m.OptimizeWeighted(omega, alpha)
		out = append(out, OmegaRow{
			Omega:      omega,
			Assignment: res.Assignment,
			ReadAvail:  m.ReadAvail(res.Assignment.QR),
			WriteAvail: m.WriteAvailForReadQuorum(res.Assignment.QR),
		})
	}
	return out
}

// BenefitStudy quantifies the value of replication itself, in the spirit
// of the paper's companion result (reference [15], "a tight upper bound on
// the benefits of replication"): the best replicated availability against
// the best single-copy (primary copy) availability on the same network.
type BenefitStudy struct {
	Replicated core.Result // optimal quorum consensus with one copy per site
	// SingleCopy is the availability of the best primary-copy placement:
	// an access succeeds iff the submitter can reach the primary.
	SingleCopy     float64
	BestPrimary    int
	Ratio          float64 // Replicated.Availability / SingleCopy
	SiteReliabilty float64 // p, the hard ACC ceiling from §3
}

// ReplicationBenefit measures both arms from simulations of the same
// topology. The primary-copy arm gives the primary all votes, making the
// component-of-submitter distribution directly reusable.
func ReplicationBenefit(chords int, alpha float64, params sim.Params,
	cfg sim.CollectConfig) (BenefitStudy, error) {
	g := topo.Paper(chords)
	model, _, err := sim.Collect(g, nil, params, cfg)
	if err != nil {
		return BenefitStudy{}, err
	}
	repl := model.Optimize(alpha)

	// Primary-copy arm: votes concentrated at one site; T = 1 and
	// q_r = q_w = 1, so availability is P[submitter reaches the primary].
	// Try a few well-spread primaries and keep the best.
	best := -1.0
	bestSite := 0
	for _, primary := range []int{0, g.N() / 4, g.N() / 2} {
		votes := quorum.PrimaryCopyVotes(g.N(), primary)
		pcCfg := cfg
		pcCfg.Seed += uint64(primary) + 1
		pcModel, _, err := sim.Collect(g, votes, params, pcCfg)
		if err != nil {
			return BenefitStudy{}, err
		}
		// T = 1: any access needs the single vote.
		a := pcModel.Availability(alpha, 1)
		if a > best {
			best, bestSite = a, primary
		}
	}
	out := BenefitStudy{
		Replicated:     repl,
		SingleCopy:     best,
		BestPrimary:    bestSite,
		SiteReliabilty: params.Reliability(),
	}
	if best > 0 {
		out.Ratio = repl.Availability / best
	}
	return out, nil
}
