package sim

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
)

func TestParallelMatchesSerial(t *testing.T) {
	g := graph.Ring(21)
	p := Params{AccessMean: 1, FailMean: 16, RepairMean: 2}
	a := quorum.Assignment{QR: 5, QW: 17}
	cfg := StudyConfig{
		Warmup: 1_000, BatchAccesses: 20_000,
		MinBatches: 4, MaxBatches: 8, CIHalfWidth: 0.005, Seed: 77,
	}
	serial, err := MeasureAvailability(g, nil, p, a, 0.6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MeasureAvailabilityParallel(g, nil, p, a, 0.6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Overall != parallel.Overall {
		t.Fatalf("overall differs:\n serial   %+v\n parallel %+v", serial.Overall, parallel.Overall)
	}
	if serial.Read != parallel.Read || serial.Write != parallel.Write {
		t.Fatal("read/write channels differ")
	}
	if serial.Batches != parallel.Batches {
		t.Fatalf("batch counts differ: %d vs %d", serial.Batches, parallel.Batches)
	}
}

// TestParallelEarlyStop: once the contiguous prefix of completed batches
// converges, batches not yet started must be cancelled — and cancelling
// them must not change the result, which stays bit-identical to the serial
// runner. A generous CI target makes the prefix converge at MinBatches,
// far below MaxBatches.
func TestParallelEarlyStop(t *testing.T) {
	g := graph.Ring(15)
	p := Params{AccessMean: 1, FailMean: 20, RepairMean: 2}
	a := quorum.Assignment{QR: 4, QW: 12}
	cfg := StudyConfig{
		Warmup: 200, BatchAccesses: 10_000,
		MinBatches: 2, MaxBatches: 64, CIHalfWidth: 0.9, Seed: 13,
	}
	serial, err := MeasureAvailability(g, nil, p, a, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Batches != cfg.MinBatches {
		t.Fatalf("fixture drift: serial converged at %d batches, want %d", serial.Batches, cfg.MinBatches)
	}

	var mu sync.Mutex
	ran := 0
	testBatchRan = func(int) { mu.Lock(); ran++; mu.Unlock() }
	defer func() { testBatchRan = nil }()

	parallel, err := MeasureAvailabilityParallel(g, nil, p, a, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if parallel != serial {
		t.Fatalf("early-stopped parallel run differs from serial:\n serial   %+v\n parallel %+v", serial, parallel)
	}
	// Work past convergence is bounded by the batches in flight or pulled
	// during the cancellation race — at most two waves of workers.
	if limit := cfg.MinBatches + 2*runtime.GOMAXPROCS(0); ran > limit {
		t.Fatalf("%d batches simulated, want ≤ %d (MinBatches + 2×workers)", ran, limit)
	}
	if ran >= cfg.MaxBatches {
		t.Fatalf("no early stop: all %d batches ran", ran)
	}
}

func TestParallelValidation(t *testing.T) {
	g := graph.Ring(5)
	bad := StudyConfig{BatchAccesses: 0}
	if _, err := MeasureAvailabilityParallel(g, nil, PaperParams(), quorum.Assignment{QR: 1, QW: 5}, 0.5, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg := StudyConfig{Warmup: 10, BatchAccesses: 100, MinBatches: 1, MaxBatches: 2, CIHalfWidth: 1, Seed: 1}
	if _, err := MeasureAvailabilityParallel(g, nil, PaperParams(), quorum.Assignment{QR: 1, QW: 1}, 0.5, cfg); err == nil {
		t.Fatal("invalid assignment accepted")
	}
}

func TestSweepCurveShape(t *testing.T) {
	// A direct-measurement sweep over the full family on a small network:
	// pure-write availability must be non-decreasing in q_r and pure-read
	// non-increasing.
	g := graph.Ring(11)
	p := Params{AccessMean: 1, FailMean: 16, RepairMean: 2}
	cfg := StudyConfig{
		Warmup: 500, BatchAccesses: 15_000,
		MinBatches: 3, MaxBatches: 3, CIHalfWidth: 1, Seed: 5,
	}
	wr, err := Sweep(g, nil, p, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(wr) != 5 {
		t.Fatalf("family size %d", len(wr))
	}
	for i := 1; i < len(wr); i++ {
		if wr[i].Overall.Mean < wr[i-1].Overall.Mean-0.03 {
			t.Fatalf("write availability decreased: %g → %g",
				wr[i-1].Overall.Mean, wr[i].Overall.Mean)
		}
	}
	rd, err := Sweep(g, nil, p, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rd); i++ {
		if rd[i].Overall.Mean > rd[i-1].Overall.Mean+0.03 {
			t.Fatalf("read availability increased: %g → %g",
				rd[i-1].Overall.Mean, rd[i].Overall.Mean)
		}
	}
	// Endpoint identity: pure reads at q_r=1 ≈ site reliability.
	rel := p.Reliability()
	if math.Abs(rd[0].Overall.Mean-rel) > 0.03 {
		t.Fatalf("A(1,1) = %g, want ≈ %g", rd[0].Overall.Mean, rel)
	}
}

func BenchmarkParallelMeasurement(b *testing.B) {
	g := graph.Ring(101)
	a := quorum.Assignment{QR: 28, QW: 74}
	cfg := StudyConfig{
		Warmup: 2_000, BatchAccesses: 20_000,
		MinBatches: 4, MaxBatches: 8, CIHalfWidth: 0.01, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := MeasureAvailabilityParallel(g, nil, PaperParams(), a, 0.75, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
