package sim

import (
	"math"
	"testing"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
)

func TestEpochTallyCounts(t *testing.T) {
	e := NewEpochTally(5)
	if e.Ops() != 0 || e.Alpha() != 0 || e.GrantRate() != 0 {
		t.Fatal("fresh tally not empty")
	}
	e.Record(true, 5, true)
	e.Record(true, 3, false)
	e.Record(false, 4, true)
	e.Record(false, 99, true) // clamps to T
	e.Record(false, -1, false)
	if e.Ops() != 5 {
		t.Fatalf("Ops = %d", e.Ops())
	}
	if math.Abs(e.Alpha()-0.4) > 1e-12 {
		t.Fatalf("Alpha = %g", e.Alpha())
	}
	if math.Abs(e.GrantRate()-0.6) > 1e-12 {
		t.Fatalf("GrantRate = %g", e.GrantRate())
	}
	e.Reset()
	if e.Ops() != 0 || e.GrantRate() != 0 {
		t.Fatal("Reset did not clear")
	}
	if b, q := e.OracleAvailability(); b != 0 || q != 0 {
		t.Fatal("empty oracle not zero")
	}
}

func TestEpochTallyOracleFullComponent(t *testing.T) {
	// Every op sees the full component: any valid assignment is always
	// available, so the oracle is exactly 1.
	e := NewEpochTally(5)
	for i := 0; i < 100; i++ {
		e.Record(i%2 == 0, 5, true)
	}
	best, qr := e.OracleAvailability()
	if math.Abs(best-1) > 1e-12 {
		t.Fatalf("oracle = %g, want 1", best)
	}
	if qr < 1 || qr > 2 {
		t.Fatalf("oracle q_r = %d out of family range", qr)
	}
}

func TestEpochTallyOracleMatchesKernel(t *testing.T) {
	// The tally's oracle must equal a direct kernel evaluation of the
	// same empirical densities.
	e := NewEpochTally(7)
	votesOf := []int{7, 7, 5, 4, 4, 3, 7, 6}
	for i, v := range votesOf {
		e.Record(i%4 != 0, v, v >= 4) // α = 3/4
	}
	best, qr := e.OracleAvailability()

	T := 7
	r := make(dist.PMF, T+1)
	w := make(dist.PMF, T+1)
	var nr, nw float64
	for i, v := range votesOf {
		if i%4 != 0 {
			r[v]++
			nr++
		} else {
			w[v]++
			nw++
		}
	}
	for v := range r {
		r[v] /= nr
		w[v] /= nw
	}
	alpha := nr / float64(len(votesOf))
	curve := core.AvailabilityCurveInto(alpha, r, w, nil)
	wantBest, wantQR := curve[0], 1
	for i, a := range curve {
		if a > wantBest {
			wantBest, wantQR = a, i+1
		}
	}
	if best != wantBest || qr != wantQR {
		t.Fatalf("oracle (%g, %d) != kernel (%g, %d)", best, qr, wantBest, wantQR)
	}
}

func TestEpochTallyOracleReadHeavySkew(t *testing.T) {
	// A read-dominant epoch whose reads often see a small component: the
	// oracle must prefer a small read quorum (q_r = 1 beats majority).
	e := NewEpochTally(9)
	for i := 0; i < 90; i++ {
		e.Record(true, 3, false) // reads trapped in a 3-vote component
	}
	for i := 0; i < 10; i++ {
		e.Record(false, 9, true) // rare writes see the full component
	}
	best, qr := e.OracleAvailability()
	if qr != 1 {
		t.Fatalf("oracle picked q_r = %d, want 1 for read-dominant small components", qr)
	}
	// α·1 + (1−α)·P(v=9 on writes) = 0.9 + 0.1 = 1 here.
	if math.Abs(best-1) > 1e-12 {
		t.Fatalf("oracle availability %g", best)
	}
}

func TestEpochTallySingleSidedEpochs(t *testing.T) {
	// Epochs with only reads (or only writes) must not panic and must
	// produce the one-sided availability.
	reads := NewEpochTally(5)
	for i := 0; i < 20; i++ {
		reads.Record(true, 5, true)
	}
	if best, _ := reads.OracleAvailability(); math.Abs(best-1) > 1e-12 {
		t.Fatalf("read-only oracle %g", best)
	}
	writes := NewEpochTally(5)
	for i := 0; i < 20; i++ {
		writes.Record(false, 5, true)
	}
	if best, _ := writes.OracleAvailability(); math.Abs(best-1) > 1e-12 {
		t.Fatalf("write-only oracle %g", best)
	}
}

func TestNewEpochTallyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted non-positive vote total")
		}
	}()
	NewEpochTally(0)
}
