package sim

import (
	"math"
	"testing"

	"quorumkit/internal/core"
	"quorumkit/internal/graph"
)

func newTestEstimator(n int) *core.Estimator { return core.NewEstimator(n, n) }

func TestNetStatsRing(t *testing.T) {
	const rel = 0.9
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel}
	g := graph.Ring(21)
	s := New(g, nil, p, 4)
	var ns NetStats
	s.RunUntil(500) // warm-up before attaching
	s.AttachNetStats(&ns)
	s.RunUntil(20500)

	// Mean up sites = n·rel.
	if got, want := ns.MeanUpSites(), 21*rel; math.Abs(got-want) > 0.3 {
		t.Fatalf("mean up sites %g, want ≈ %g", got, want)
	}
	if ns.MeanComponents() <= 1 {
		t.Fatalf("ring at 90%% reliability must partition sometimes: mean comps %g", ns.MeanComponents())
	}
	if ns.MeanLargestVotes() <= 0 || ns.MeanLargestVotes() > 21 {
		t.Fatalf("mean largest votes %g", ns.MeanLargestVotes())
	}
	if ns.Events() == 0 {
		t.Fatal("no events counted")
	}
	pf := ns.PartitionedFraction()
	if pf <= 0 || pf > 1 {
		t.Fatalf("partitioned fraction %g", pf)
	}
}

func TestNetStatsDenseVsSparse(t *testing.T) {
	const rel = 0.9
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel}
	run := func(g *graph.Graph) *NetStats {
		s := New(g, nil, p, 6)
		var ns NetStats
		s.AttachNetStats(&ns)
		s.RunUntil(10000)
		return &ns
	}
	sparse := run(graph.Ring(15))
	dense := run(graph.Complete(15))
	// Density holds the network together: fewer components, larger
	// largest component.
	if dense.MeanComponents() >= sparse.MeanComponents() {
		t.Fatalf("complete graph should have fewer components: %g vs %g",
			dense.MeanComponents(), sparse.MeanComponents())
	}
	if dense.MeanLargestVotes() <= sparse.MeanLargestVotes() {
		t.Fatalf("complete graph should keep a larger main component: %g vs %g",
			dense.MeanLargestVotes(), sparse.MeanLargestVotes())
	}
}

// TestWeibullInsensitivity verifies the renewal-theoretic insensitivity
// property: the stationary component-size density depends on the up/down
// *means* only, so replacing exponential up-times with bursty Weibull
// (shape 0.5) ones leaves the availability model unchanged. This is why
// the paper's results survive its exponential assumption.
func TestWeibullInsensitivity(t *testing.T) {
	const rel = 0.9
	base := Params{AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel}
	bursty := base
	bursty.FailShape = 0.5
	g := graph.Complete(5)

	measure := func(p Params, seed uint64) []float64 {
		s := New(g, nil, p, seed)
		est := newTestEstimator(5)
		s.RunUntil(2000) // generous warm-up absorbs the inspection paradox
		s.AttachTimeWeighted(est, nil)
		s.RunUntil(62000)
		f := est.Density(0)
		return f
	}
	fExp := measure(base, 3)
	fWei := measure(bursty, 4)
	for v := 0; v <= 5; v++ {
		if math.Abs(fExp[v]-fWei[v]) > 0.025 {
			t.Fatalf("f(%d): exponential %g vs Weibull %g — insensitivity violated",
				v, fExp[v], fWei[v])
		}
	}
}

func TestFailShapeValidation(t *testing.T) {
	p := PaperParams()
	p.FailShape = -1
	defer func() {
		if recover() == nil {
			t.Fatal("negative shape should panic")
		}
	}()
	New(graph.Ring(3), nil, p, 1)
}

func TestNetStatsEmpty(t *testing.T) {
	var ns NetStats
	if ns.MeanComponents() != 0 || ns.PartitionedFraction() != 0 || ns.MeanUpSites() != 0 {
		t.Fatal("zero-value NetStats should report zeros")
	}
}

func TestNetStatsWithEstimatorTogether(t *testing.T) {
	// NetStats and the time-weighted estimator can share a run.
	p := PaperParams()
	g := graph.Ring(11)
	s := New(g, nil, p, 8)
	var ns NetStats
	est := newTestEstimator(11)
	s.AttachTimeWeighted(est, nil)
	s.AttachNetStats(&ns)
	s.RunUntil(5000)
	if est.Weight(0) == 0 || ns.Events() == 0 {
		t.Fatal("joint attachment lost data")
	}
}
