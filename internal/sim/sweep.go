package sim

import (
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/stats"
)

// This file is the simulation-side half of the large-N assignment kernel.
//
// An access is granted under assignment (q_r, q_w) iff the vote total v of
// the submitting site's component meets the quorum — a pure threshold test.
// The simulated trajectory (failures, repairs, access arrivals, the
// read/write coin flips) never depends on the assignment, so one batch
// simulation determines the grant/deny Counters of *every* assignment in
// the paper's family at once: tally accesses per vote total into read and
// write histograms, then a single O(T) suffix-sum pass yields
// ReadsGranted(q_r) = Σ_{v≥q_r} reads(v) and WritesGranted(q_w) likewise
// for all ⌊T/2⌋ family members. The seed path (SweepReference) instead runs
// a full simulation per family member — O(T) simulations of the identical
// trajectory — which is what made thousand-site sweeps intractable.

// familyTally accumulates one batch's accesses by component vote total,
// split by the read/write coin. Index v ∈ [0, T]; v = 0 is a down site.
type familyTally struct {
	reads  []int64
	writes []int64
}

func newFamilyTally(T int) *familyTally {
	return &familyTally{reads: make([]int64, T+1), writes: make([]int64, T+1)}
}

func (t *familyTally) reset() {
	for i := range t.reads {
		t.reads[i] = 0
	}
	for i := range t.writes {
		t.writes[i] = 0
	}
}

// familyAccumulator replays the serial convergence rule of
// MeasureAvailability for one assignment over the per-batch counters the
// tally derives.
type familyAccumulator struct {
	all, rd, wr stats.BatchMeans
	batches     int
	done        bool
}

func (a *familyAccumulator) add(c Counters, alpha float64, cfg StudyConfig) {
	a.all.AddBatch(c.Availability())
	if alpha > 0 {
		a.rd.AddBatch(c.ReadAvailability())
	}
	if alpha < 1 {
		a.wr.AddBatch(c.WriteAvailability())
	}
	a.batches++
	if a.batches >= cfg.MinBatches && a.all.Converged(cfg.CIHalfWidth) {
		a.done = true
	}
}

func (a *familyAccumulator) measurement() Measurement {
	return Measurement{
		Overall: a.all.Interval95(),
		Read:    a.rd.Interval95(),
		Write:   a.wr.Interval95(),
		Batches: a.batches,
	}
}

// Sweep measures every assignment in the paper's family
// {(q_r, T−q_r+1) : 1 ≤ q_r ≤ ⌊T/2⌋} by direct simulation and returns the
// measurements indexed by q_r−1.
//
// Each batch is simulated once, in family-tally mode, and the Counters of
// every assignment are derived from the tally by one suffix-sum pass; each
// assignment then applies the serial convergence rule independently over
// the per-batch counters, with batches ending once every assignment has
// converged. The result is bit-identical to calling MeasureAvailability
// per family member with the same configuration (the per-assignment
// Counters are the same integers, so every downstream float is the same),
// at roughly 1/⌊T/2⌋ of the simulation work.
//
// A registry in cfg.Obs observes the shared trajectory once per batch:
// topology counters and trace events flow as usual, but the per-access
// grant/deny counters stay untouched — grant-ness is assignment-dependent
// and has no single value during a family sweep.
func Sweep(g *graph.Graph, votes []int, p Params, alpha float64,
	cfg StudyConfig) ([]Measurement, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st := graph.NewState(g, votes)
	T := st.TotalVotes()
	family := quorum.Enumerate(T)
	if len(family) == 0 {
		return nil, nil
	}

	accs := make([]familyAccumulator, len(family))
	remaining := len(accs)
	tally := newFamilyTally(T)
	// suff*[v] = number of measured accesses whose component held ≥ v votes.
	suffR := make([]int64, T+2)
	suffW := make([]int64, T+2)

	s := New(g, votes, p, cfg.Seed)
	if cfg.Obs != nil {
		s.AttachObs(cfg.Obs)
	}
	for b := 0; b < cfg.MaxBatches && remaining > 0; b++ {
		if b > 0 {
			s.Reset(cfg.Seed + uint64(b))
		}
		s.setFamilyTally(tally, alpha)
		s.RunAccesses(cfg.Warmup)
		tally.reset() // discard the warm-up prefix, as ResetCounters does
		s.RunAccesses(cfg.BatchAccesses)

		for v := T; v >= 0; v-- {
			suffR[v] = suffR[v+1] + tally.reads[v]
			suffW[v] = suffW[v+1] + tally.writes[v]
		}
		totalR, totalW := suffR[0], suffW[0]
		for i := range accs {
			if accs[i].done {
				continue
			}
			c := Counters{
				ReadsGranted:  suffR[family[i].QR],
				ReadsDenied:   totalR - suffR[family[i].QR],
				WritesGranted: suffW[family[i].QW],
				WritesDenied:  totalW - suffW[family[i].QW],
			}
			accs[i].add(c, alpha, cfg)
			if accs[i].done {
				remaining--
			}
		}
		tally.reset()
	}

	out := make([]Measurement, len(accs))
	for i := range accs {
		out[i] = accs[i].measurement()
	}
	return out, nil
}
