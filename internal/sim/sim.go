// Package sim is the steady-state discrete event simulator of the paper's
// §5.2: sites and links fail and recover as independent alternating Poisson
// processes, access requests arrive as per-site Poisson streams, all events
// are instantaneous, and the network partitions induced by failures decide
// which accesses the quorum consensus protocol can grant.
//
// The simulator supports the paper's estimation mode — each access records
// the vote total of the submitting site's component, approximating f_i(v)
// on-line — and a lower-variance time-weighted mode justified by PASTA
// (Poisson arrivals see time averages): component occupancy is accumulated
// by duration between events, so the same simulated horizon yields a much
// tighter estimate. Both feed the optimizer of internal/core.
package sim

import (
	"fmt"

	"quorumkit/internal/core"
	"quorumkit/internal/graph"
	"quorumkit/internal/obs"
	"quorumkit/internal/quorum"
	"quorumkit/internal/rng"
)

// Params are the stochastic parameters of the study (§5.2 defaults via
// PaperParams).
type Params struct {
	AccessMean float64 // mean time between accesses at each site (μ_t)
	FailMean   float64 // mean up-time of every site and link (μ_f)
	RepairMean float64 // mean down-time of every site and link (μ_r)

	// AccessWeights, when non-nil, skews the per-site access rates: site i
	// submits accesses with mean interarrival AccessMean/Weights[i]
	// (weights are relative rates; a weight of 0 silences a site). This
	// realizes the paper's non-uniform access distributions r_i, w_i —
	// with Poisson streams the fraction of accesses submitted at site i is
	// Weights[i]/ΣWeights.
	AccessWeights []float64

	// FailShape, when positive and ≠ 1, draws component up-times from a
	// Weibull distribution with this shape (mean still FailMean) instead
	// of the exponential. Stationary availability depends only on the
	// up/down means (renewal-theoretic insensitivity), so the paper's
	// availability results are robust to this assumption — a property the
	// tests verify empirically.
	FailShape float64

	// Shock, when non-nil, adds *correlated* regional failures on top of
	// the independent per-component processes: at Poisson times a
	// contiguous run of sites fails together and recovers together. The
	// paper's analytic models assume failure independence; shocks violate
	// that assumption, which is exactly the situation where its on-line
	// estimation (§4.2–4.3) beats any off-line model.
	Shock *ShockParams
}

// ShockParams describes the correlated-failure process.
type ShockParams struct {
	Mean     float64 // mean time between shocks (Poisson)
	Size     int     // number of consecutive sites taken down per shock
	Duration float64 // mean shock length (exponential)
}

func (s *ShockParams) validate() error {
	if s == nil {
		return nil
	}
	if s.Mean <= 0 || s.Size <= 0 || s.Duration <= 0 {
		return fmt.Errorf("sim: bad shock params %+v", *s)
	}
	return nil
}

// accessMeanAt returns the mean interarrival time of site i's accesses, or
// +Inf when the site never submits.
func (p Params) accessMeanAt(i int) float64 {
	if p.AccessWeights == nil {
		return p.AccessMean
	}
	w := p.AccessWeights[i]
	if w <= 0 {
		return 0 // sentinel: no accesses
	}
	return p.AccessMean / w
}

// PaperParams returns the paper's parameters: μ_t = 1, ρ = μ_t/μ_f = 1/128,
// and component reliability 0.96, hence μ_r = μ_f·(1−0.96)/0.96.
func PaperParams() Params {
	const (
		accessMean  = 1.0
		rho         = 1.0 / 128.0
		reliability = 0.96
	)
	failMean := accessMean / rho
	return Params{
		AccessMean: accessMean,
		FailMean:   failMean,
		RepairMean: failMean * (1 - reliability) / reliability,
	}
}

// Reliability returns the stationary probability that a component is up,
// μ_f/(μ_f+μ_r).
func (p Params) Reliability() float64 {
	return p.FailMean / (p.FailMean + p.RepairMean)
}

func (p Params) validate() error {
	if p.AccessMean <= 0 || p.FailMean <= 0 || p.RepairMean <= 0 {
		return fmt.Errorf("sim: all Params means must be positive, got %+v", p)
	}
	if p.FailShape < 0 {
		return fmt.Errorf("sim: negative FailShape %g", p.FailShape)
	}
	for i, w := range p.AccessWeights {
		if w < 0 {
			return fmt.Errorf("sim: negative access weight %g at site %d", w, i)
		}
	}
	return nil
}

// Counters tallies granted and denied accesses when a protocol is attached.
type Counters struct {
	ReadsGranted  int64
	ReadsDenied   int64
	WritesGranted int64
	WritesDenied  int64
}

// Accesses returns the total number of counted accesses.
func (c Counters) Accesses() int64 {
	return c.ReadsGranted + c.ReadsDenied + c.WritesGranted + c.WritesDenied
}

// Availability returns the fraction of all accesses granted (the ACC
// metric measured directly).
func (c Counters) Availability() float64 {
	n := c.Accesses()
	if n == 0 {
		return 0
	}
	return float64(c.ReadsGranted+c.WritesGranted) / float64(n)
}

// ReadAvailability returns the fraction of read accesses granted.
func (c Counters) ReadAvailability() float64 {
	n := c.ReadsGranted + c.ReadsDenied
	if n == 0 {
		return 0
	}
	return float64(c.ReadsGranted) / float64(n)
}

// WriteAvailability returns the fraction of write accesses granted.
func (c Counters) WriteAvailability() float64 {
	n := c.WritesGranted + c.WritesDenied
	if n == 0 {
		return 0
	}
	return float64(c.WritesGranted) / float64(n)
}

// Protocol is what the simulator consults on each access when direct
// grant/deny measurement is enabled. The quorum consensus protocol is the
// static implementation; the replica package provides the dynamic
// quorum-reassignment implementation.
type Protocol interface {
	// GrantRead reports whether a read succeeds for the given component
	// vote total.
	GrantRead(votes int) bool
	// GrantWrite likewise for writes.
	GrantWrite(votes int) bool
}

// Simulator drives one replicated data object over a failing network.
type Simulator struct {
	st     *graph.State
	params Params
	src    *rng.Source

	now     float64
	heap    eventHeap
	genAcc  bool // whether access events are scheduled
	nAccess int64

	// genAccessWeighted marks time-weighted accumulation active: occupancy
	// is charged per inter-event interval instead of per access sample.
	genAccessWeighted bool

	est  *core.Estimator
	surv *core.SurvEstimator
	net  *NetStats
	last float64 // time of last occupancy accumulation

	protocol Protocol
	alpha    float64
	counters Counters

	// tally, when non-nil, replaces the single-assignment protocol path
	// with family counting: each access records its component vote total
	// into a read or write histogram, from which the Counters of *every*
	// assignment in the paper's family follow by one suffix-sum pass. The
	// RNG draw order is identical to the protocol path, so a tally run
	// follows the exact event trajectory of a protocol run.
	tally *familyTally

	// strat, when non-nil, judges each access by sampling a quorum from a
	// randomized strategy (own RNG substream) and checking it against the
	// submitter's component; see SetStrategyPolicy.
	strat *StrategyPolicy

	// pendGrant/pendDeny batch the per-access observability counter
	// updates; they are flushed into obs at the end of every Run* call so
	// a steady-state access touches no atomics. The pendStrat* fields do
	// the same for the strategy-policy counters.
	pendGrant      int64
	pendDeny       int64
	pendStratRead  int64
	pendStratWrite int64
	pendStratDeny  int64
	pendStratProbe int64

	// Correlated-shock bookkeeping: a site is effectively up iff its
	// independent process says up AND no active shock covers it.
	indepUp    []bool
	shockCount []int
	shocks     map[int][]int // shock id → affected sites
	nextShock  int

	// OnAccess, if set, is invoked for every access event with the
	// submitting site, its component vote total and the current time.
	OnAccess func(site, votes int, t float64)
	// OnChange, if set, is invoked after every failure/repair event.
	OnChange func(t float64)

	// obs, when non-nil, receives per-event counters and topology trace
	// events (see AttachObs); observation never affects the event stream.
	obs *obs.Registry
}

// New creates a simulator over graph g with the given per-site votes (nil
// for one vote per site), parameters and RNG seed. All sites and links
// start up; failure clocks start immediately. Access events are scheduled
// lazily when a consumer needs them (estimator in sampled mode, protocol
// counting, or RunAccesses).
func New(g *graph.Graph, votes []int, p Params, seed uint64) *Simulator {
	if err := p.validate(); err != nil {
		panic(err)
	}
	if p.AccessWeights != nil && len(p.AccessWeights) != g.N() {
		panic(fmt.Sprintf("sim: %d access weights for %d sites", len(p.AccessWeights), g.N()))
	}
	s := &Simulator{
		st:     graph.NewState(g, votes),
		params: p,
		src:    rng.New(seed),
	}
	// Steady state holds at most one pending event per component (fail or
	// repair), one access per site, and a small shock margin; sizing the
	// heap for that bound up front keeps every later push allocation-free.
	s.heap.grow(2*g.N() + g.M() + 8)
	if err := p.Shock.validate(); err != nil {
		panic(err)
	}
	if p.Shock != nil {
		s.indepUp = make([]bool, g.N())
		s.shockCount = make([]int, g.N())
		s.shocks = map[int][]int{}
	}
	s.arm()
	return s
}

// arm schedules the initial failure clocks (and the first shock) from the
// current RNG state, exactly as construction does.
func (s *Simulator) arm() {
	g := s.st.Graph()
	for i := 0; i < g.N(); i++ {
		s.heap.push(s.drawUpTime(), evSiteFail, i)
	}
	for l := 0; l < g.M(); l++ {
		s.heap.push(s.drawUpTime(), evLinkFail, l)
	}
	if s.params.Shock != nil {
		for i := range s.indepUp {
			s.indepUp[i] = true
		}
		for i := range s.shockCount {
			s.shockCount[i] = 0
		}
		clear(s.shocks)
		s.nextShock = 0
		s.heap.push(s.src.Exp(s.params.Shock.Mean), evShockBegin, 0)
	}
}

// Reset rewinds the simulator to the state New would produce over the same
// graph, votes and parameters with the given seed: every component up, all
// clocks redrawn from the fresh seed, time and counters zeroed, and the
// consumer attachments (estimator, protocol, family tally, net stats)
// cleared so the caller re-attaches what the next run needs. The attached
// observability registry and the OnAccess/OnChange hooks are kept.
//
// A Reset simulator produces the bit-identical event stream of a freshly
// constructed one — the batch runners rely on this to reuse one simulator's
// state, heap and RNG across batches with zero per-batch allocation.
func (s *Simulator) Reset(seed uint64) {
	s.flushObs()
	s.src.Reseed(seed)
	s.st.SetAll(true)
	s.heap.reset()
	s.now = 0
	s.last = 0
	s.nAccess = 0
	s.counters = Counters{}
	s.genAcc = false
	s.genAccessWeighted = false
	s.est = nil
	s.surv = nil
	s.net = nil
	s.protocol = nil
	s.tally = nil
	s.strat = nil
	s.alpha = 0
	s.arm()
}

// drawUpTime samples a component's next up-time: exponential by default,
// Weibull with the configured shape (same mean) otherwise.
func (s *Simulator) drawUpTime() float64 {
	if s.params.FailShape > 0 && s.params.FailShape != 1 {
		return s.src.WeibullMean(s.params.FailShape, s.params.FailMean)
	}
	return s.src.Exp(s.params.FailMean)
}

// siteEffectivelyUp combines the independent process with active shocks.
func (s *Simulator) siteEffectivelyUp(i int) bool {
	if s.indepUp == nil {
		return true
	}
	return s.indepUp[i] && s.shockCount[i] == 0
}

// State exposes the live network state (read-mostly; mutate at your own
// risk — the replica layer uses it to inspect components).
func (s *Simulator) State() *graph.State { return s.st }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// AccessCount returns the number of access events processed so far.
func (s *Simulator) AccessCount() int64 { return s.nAccess }

// Counters returns the grant/deny tallies (zero unless a protocol is set).
func (s *Simulator) Counters() Counters { return s.counters }

// ResetCounters clears the grant/deny tallies (e.g. after warm-up).
func (s *Simulator) ResetCounters() { s.counters = Counters{} }

// AttachEstimator directs access observations (sampled mode) into est.
// Enables access event generation.
func (s *Simulator) AttachEstimator(est *core.Estimator) {
	s.est = est
	s.ensureAccessEvents()
}

// AttachTimeWeighted directs time-weighted occupancy into est (and the
// optional SURV estimator): every inter-event interval contributes its
// duration to each site's current component vote count. No access events
// are needed.
func (s *Simulator) AttachTimeWeighted(est *core.Estimator, surv *core.SurvEstimator) {
	s.est = est
	s.surv = surv
	s.genAccessWeighted = true
	s.last = s.now
}

// AttachObs directs simulator observability — topology event and access
// grant/deny counters plus EvTopology trace events — into registry r (nil
// detaches). Unlike the estimator attachments it draws no randomness and
// schedules nothing, so attaching it cannot perturb the event stream.
func (s *Simulator) AttachObs(r *obs.Registry) { s.obs = r }

// SetProtocol attaches a protocol and read fraction α for direct grant/deny
// measurement. Enables access event generation and clears any family tally.
func (s *Simulator) SetProtocol(p Protocol, alpha float64) {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("sim: α=%g out of [0,1]", alpha))
	}
	s.protocol = p
	s.tally = nil
	s.strat = nil
	s.alpha = alpha
	s.ensureAccessEvents()
}

// setFamilyTally attaches a family tally and read fraction α: every access
// records its component vote total into t's read or write histogram instead
// of being judged against a single assignment. Enables access event
// generation and clears any protocol.
func (s *Simulator) setFamilyTally(t *familyTally, alpha float64) {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("sim: α=%g out of [0,1]", alpha))
	}
	s.tally = t
	s.protocol = nil
	s.strat = nil
	s.alpha = alpha
	s.ensureAccessEvents()
}

// flushObs pushes the batched access grant/deny counts into the attached
// registry. Called at the end of every Run* so registry totals always
// account for every processed event once control returns to the caller.
func (s *Simulator) flushObs() {
	if s.obs != nil {
		if s.pendGrant != 0 {
			s.obs.Add(obs.CSimAccessGrant, s.pendGrant)
		}
		if s.pendDeny != 0 {
			s.obs.Add(obs.CSimAccessDeny, s.pendDeny)
		}
	}
	s.pendGrant, s.pendDeny = 0, 0
	s.flushStratObs()
}

func (s *Simulator) ensureAccessEvents() {
	if s.genAcc {
		return
	}
	s.genAcc = true
	for i := 0; i < s.st.Graph().N(); i++ {
		if mean := s.params.accessMeanAt(i); mean > 0 {
			s.heap.push(s.now+s.src.Exp(mean), evAccess, i)
		}
	}
}

// NetStats accumulates time-weighted topology observability metrics.
type NetStats struct {
	elapsed    float64
	compTime   float64 // ∫ number of live components dt
	maxTime    float64 // ∫ largest-component votes dt
	upTime     float64 // ∫ up-site count dt
	partitions int64   // events after which >1 component existed
	events     int64   // failure/repair events observed
}

// MeanComponents returns the time-average number of live components.
func (n *NetStats) MeanComponents() float64 { return safeDiv(n.compTime, n.elapsed) }

// MeanLargestVotes returns the time-average vote total of the largest
// component.
func (n *NetStats) MeanLargestVotes() float64 { return safeDiv(n.maxTime, n.elapsed) }

// MeanUpSites returns the time-average number of up sites.
func (n *NetStats) MeanUpSites() float64 { return safeDiv(n.upTime, n.elapsed) }

// PartitionedFraction returns the fraction of failure/repair events that
// left the network split into more than one component.
func (n *NetStats) PartitionedFraction() float64 {
	return safeDiv(float64(n.partitions), float64(n.events))
}

// Events returns the number of failure/repair events observed.
func (n *NetStats) Events() int64 { return n.events }

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// AttachNetStats directs time-weighted topology statistics into ns. Like
// AttachTimeWeighted, it activates interval accumulation.
func (s *Simulator) AttachNetStats(ns *NetStats) {
	s.net = ns
	s.genAccessWeighted = true
	s.last = s.now
}

// accumulate charges the interval since the last accumulation to the
// current component occupancy of every site (time-weighted mode) and the
// attached topology statistics.
func (s *Simulator) accumulate(until float64) {
	dt := until - s.last
	if dt <= 0 {
		return
	}
	n := s.st.Graph().N()
	if s.est != nil {
		for i := 0; i < n; i++ {
			s.est.ObserveFor(i, s.st.VotesAt(i), dt)
		}
	}
	if s.surv != nil {
		s.surv.ObserveFor(s.st.MaxComponentVotes(), dt)
	}
	if s.net != nil {
		s.net.elapsed += dt
		s.net.compTime += dt * float64(s.st.NumComponents())
		s.net.maxTime += dt * float64(s.st.MaxComponentVotes())
		up := 0
		for i := 0; i < n; i++ {
			if s.st.SiteUp(i) {
				up++
			}
		}
		s.net.upTime += dt * float64(up)
	}
	s.last = until
}

// observeTopology records one topology event into the attached registry:
// its per-kind counter (skipped for shocks, whose site counts are added by
// the caller — ctr 0 is the skip sentinel) and, when tracing, an EvTopology
// event carrying the raw event kind and the up/down direction.
func (s *Simulator) observeTopology(ctr obs.CounterID, e event, up bool) {
	if s.obs == nil {
		return
	}
	if ctr != 0 {
		s.obs.Inc(ctr)
	}
	b := int64(0)
	if up {
		b = 1
	}
	s.obs.Emit(obs.EvTopology, -1, int32(e.idx), int64(e.kind), b)
}

// step processes the next event. It returns the event kind.
func (s *Simulator) step() eventKind {
	e := s.heap.pop()
	if s.genAccessWeighted && e.kind != evAccess {
		s.accumulate(e.at)
	}
	s.now = e.at
	switch e.kind {
	case evSiteFail:
		if s.indepUp != nil {
			s.indepUp[e.idx] = false
		}
		s.st.FailSite(e.idx)
		s.heap.push(s.now+s.src.Exp(s.params.RepairMean), evSiteRepair, e.idx)
		s.observeTopology(obs.CSimSiteFail, e, false)
		if s.OnChange != nil {
			s.OnChange(s.now)
		}
	case evSiteRepair:
		if s.indepUp != nil {
			s.indepUp[e.idx] = true
		}
		if s.siteEffectivelyUp(e.idx) {
			s.st.RepairSite(e.idx)
		}
		s.heap.push(s.now+s.drawUpTime(), evSiteFail, e.idx)
		s.observeTopology(obs.CSimSiteRepair, e, true)
		if s.OnChange != nil {
			s.OnChange(s.now)
		}
	case evShockBegin:
		shock := s.params.Shock
		start := s.src.Intn(s.st.Graph().N())
		n := s.st.Graph().N()
		sites := make([]int, 0, shock.Size)
		for k := 0; k < shock.Size && k < n; k++ {
			i := (start + k) % n
			sites = append(sites, i)
			s.shockCount[i]++
			s.st.FailSite(i)
		}
		s.nextShock++
		s.shocks[s.nextShock] = sites
		s.heap.push(s.now+s.src.Exp(shock.Duration), evShockEnd, s.nextShock)
		s.heap.push(s.now+s.src.Exp(shock.Mean), evShockBegin, 0)
		s.obs.Add(obs.CSimSiteFail, int64(len(sites)))
		s.observeTopology(0, e, false)
		if s.OnChange != nil {
			s.OnChange(s.now)
		}
	case evShockEnd:
		sites := s.shocks[e.idx]
		delete(s.shocks, e.idx)
		for _, i := range sites {
			s.shockCount[i]--
			if s.siteEffectivelyUp(i) {
				s.st.RepairSite(i)
			}
		}
		s.obs.Add(obs.CSimSiteRepair, int64(len(sites)))
		s.observeTopology(0, e, true)
		if s.OnChange != nil {
			s.OnChange(s.now)
		}
	case evLinkFail:
		s.st.FailLink(e.idx)
		s.heap.push(s.now+s.src.Exp(s.params.RepairMean), evLinkRepair, e.idx)
		s.observeTopology(obs.CSimLinkFail, e, false)
		if s.OnChange != nil {
			s.OnChange(s.now)
		}
	case evLinkRepair:
		s.st.RepairLink(e.idx)
		s.heap.push(s.now+s.drawUpTime(), evLinkFail, e.idx)
		s.observeTopology(obs.CSimLinkRepair, e, true)
		if s.OnChange != nil {
			s.OnChange(s.now)
		}
	case evAccess:
		s.nAccess++
		votes := s.st.VotesAt(e.idx)
		if s.est != nil && !s.genAccessWeighted {
			s.est.Observe(e.idx, votes)
		}
		if s.tally != nil {
			// Same Bernoulli draw as the protocol path, so the event
			// trajectory is identical; grant-ness is assignment-dependent
			// and resolved later by the suffix-sum pass.
			if s.src.Bernoulli(s.alpha) {
				s.tally.reads[votes]++
			} else {
				s.tally.writes[votes]++
			}
		} else if s.strat != nil {
			s.stratAccess(e.idx)
		} else if s.protocol != nil {
			if s.src.Bernoulli(s.alpha) {
				if s.protocol.GrantRead(votes) {
					s.counters.ReadsGranted++
					s.pendGrant++
				} else {
					s.counters.ReadsDenied++
					s.pendDeny++
				}
			} else {
				if s.protocol.GrantWrite(votes) {
					s.counters.WritesGranted++
					s.pendGrant++
				} else {
					s.counters.WritesDenied++
					s.pendDeny++
				}
			}
		}
		if s.OnAccess != nil {
			s.OnAccess(e.idx, votes, s.now)
		}
		s.heap.push(s.now+s.src.Exp(s.params.accessMeanAt(e.idx)), evAccess, e.idx)
	}
	if s.net != nil && e.kind != evAccess {
		s.net.events++
		if s.st.NumComponents() > 1 {
			s.net.partitions++
		}
	}
	return e.kind
}

// RunUntil processes events until simulated time t (events at exactly t are
// not processed). In time-weighted mode the trailing partial interval up to
// t is accumulated.
func (s *Simulator) RunUntil(t float64) {
	for s.heap.len() > 0 && s.heap.peek().at < t {
		s.step()
	}
	if s.genAccessWeighted {
		s.accumulate(t)
	}
	if t > s.now {
		s.now = t
	}
	s.flushObs()
}

// RunAccesses processes events until n further access events have occurred.
// It panics if access generation is disabled and no consumer enabled it.
func (s *Simulator) RunAccesses(n int64) {
	s.ensureAccessEvents()
	target := s.nAccess + n
	for s.nAccess < target {
		s.step()
	}
	s.flushObs()
}

// StaticProtocol adapts a quorum.Assignment to the Protocol interface.
type StaticProtocol struct {
	Assignment quorum.Assignment
}

// GrantRead implements Protocol.
func (p StaticProtocol) GrantRead(votes int) bool { return p.Assignment.GrantRead(votes) }

// GrantWrite implements Protocol.
func (p StaticProtocol) GrantWrite(votes int) bool { return p.Assignment.GrantWrite(votes) }
