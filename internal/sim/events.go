package sim

// Event kinds, ordered for deterministic tie-breaking at equal timestamps.
type eventKind uint8

const (
	evSiteFail eventKind = iota
	evSiteRepair
	evLinkFail
	evLinkRepair
	evAccess
	evShockBegin
	evShockEnd
)

type event struct {
	at   float64
	seq  uint64 // insertion order; breaks timestamp ties deterministically
	kind eventKind
	idx  int // site or link index
}

func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a plain binary min-heap of events. A hand-rolled heap avoids
// the interface boxing of container/heap on the simulator's hot path.
type eventHeap struct {
	items []event
	seq   uint64
}

func (h *eventHeap) push(at float64, kind eventKind, idx int) {
	h.seq++
	e := event{at: at, seq: h.seq, kind: kind, idx: idx}
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].less(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].less(h.items[smallest]) {
			smallest = l
		}
		if r < last && h.items[r].less(h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

func (h *eventHeap) len() int { return len(h.items) }

// reset empties the heap and restarts the tie-breaking sequence, keeping
// the allocated backing array so a reused simulator pushes into warm
// storage.
func (h *eventHeap) reset() {
	h.items = h.items[:0]
	h.seq = 0
}

// grow ensures capacity for at least n events without changing contents.
func (h *eventHeap) grow(n int) {
	if cap(h.items) < n {
		items := make([]event, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

func (h *eventHeap) peek() event { return h.items[0] }
