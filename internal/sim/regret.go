package sim

// Epoch accounting for the adversarial regret harness (see
// internal/cluster's RunAdversary). An EpochTally accumulates, per epoch,
// what the serving layer actually experienced: the realized read fraction
// and the empirical distribution of component vote totals reachable at the
// coordinators of read and write attempts. From that record the oracle
// availability is one O(T) curve-kernel call: the best A(α, q_r) an
// optimizer re-run on this epoch's true workload and fault pattern could
// have chosen — the paper's Figure 1 optimum evaluated against the
// empirical densities instead of a failure model. The gap between that
// oracle and the realized grant rate, summed over epochs weighted by
// operation count, is the cumulative regret of whatever assignment policy
// actually ran.

import (
	"fmt"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
)

// EpochTally accumulates one epoch's operations.
type EpochTally struct {
	total int // T, the system vote total

	readVotes  []float64 // empirical density of reachable votes at read coordinators
	writeVotes []float64 // same for writes
	reads      int64
	writes     int64
	granted    int64

	scratchR []float64
	scratchW []float64
	curve    []float64
}

// NewEpochTally builds a tally for a system holding totalVotes votes. It
// panics on a non-positive total.
func NewEpochTally(totalVotes int) *EpochTally {
	if totalVotes <= 0 {
		panic(fmt.Sprintf("sim: NewEpochTally totalVotes=%d", totalVotes))
	}
	return &EpochTally{
		total:      totalVotes,
		readVotes:  make([]float64, totalVotes+1),
		writeVotes: make([]float64, totalVotes+1),
	}
}

// Record adds one operation: its kind, the votes reachable from its
// coordinator when it ran (clamped into [0, T]), and whether it was
// granted.
func (e *EpochTally) Record(read bool, votes int, granted bool) {
	if votes < 0 {
		votes = 0
	}
	if votes > e.total {
		votes = e.total
	}
	if read {
		e.reads++
		e.readVotes[votes]++
	} else {
		e.writes++
		e.writeVotes[votes]++
	}
	if granted {
		e.granted++
	}
}

// Ops returns the number of operations recorded this epoch.
func (e *EpochTally) Ops() int64 { return e.reads + e.writes }

// Alpha returns the realized read fraction (0 with no operations).
func (e *EpochTally) Alpha() float64 {
	ops := e.Ops()
	if ops == 0 {
		return 0
	}
	return float64(e.reads) / float64(ops)
}

// GrantRate returns the realized grant rate (0 with no operations).
func (e *EpochTally) GrantRate() float64 {
	ops := e.Ops()
	if ops == 0 {
		return 0
	}
	return float64(e.granted) / float64(ops)
}

// Reset clears the tally for the next epoch.
func (e *EpochTally) Reset() {
	for i := range e.readVotes {
		e.readVotes[i] = 0
		e.writeVotes[i] = 0
	}
	e.reads, e.writes, e.granted = 0, 0, 0
}

// OracleAvailability evaluates the epoch's oracle: the availability of the
// best assignment an optimizer re-run on the epoch's realized read
// fraction and empirical vote densities would have installed, together
// with that assignment's read quorum. With no operations recorded it
// returns (0, 0).
//
// This is exactly the paper's A(α, q_r) = α·P(v ≥ q_r) + (1−α)·P(v ≥ q_w)
// maximized over the family, evaluated by the O(T) curve kernel against
// the densities the epoch actually produced — so it equals the expected
// grant rate of the oracle policy on this epoch's operation mix.
func (e *EpochTally) OracleAvailability() (best float64, qr int) {
	ops := e.Ops()
	if ops == 0 {
		return 0, 0
	}
	alpha := e.Alpha()
	r := e.normalize(e.readVotes, e.reads, &e.scratchR)
	w := e.normalize(e.writeVotes, e.writes, &e.scratchW)
	// A side with no operations contributes weight 0 to the blend; its
	// density only has to be well-formed, so reuse the other side's.
	if e.reads == 0 {
		r = w
	}
	if e.writes == 0 {
		w = r
	}
	e.curve = core.AvailabilityCurveInto(alpha, dist.PMF(r), dist.PMF(w), e.curve)
	bestIdx := 0
	for i, a := range e.curve {
		if a > e.curve[bestIdx] {
			bestIdx = i
		}
	}
	return e.curve[bestIdx], bestIdx + 1
}

// normalize scales a vote histogram into a probability density, reusing
// the given scratch slice.
func (e *EpochTally) normalize(hist []float64, n int64, scratch *[]float64) []float64 {
	if cap(*scratch) < len(hist) {
		*scratch = make([]float64, len(hist))
	}
	out := (*scratch)[:len(hist)]
	if n == 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	inv := 1 / float64(n)
	for i, c := range hist {
		out[i] = c * inv
	}
	return out
}
