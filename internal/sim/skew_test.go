package sim

import (
	"math"
	"testing"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
	"quorumkit/internal/graph"
)

func TestSkewedAccessRates(t *testing.T) {
	g := graph.Path(3)
	p := Params{
		AccessMean: 1, FailMean: 50, RepairMean: 5,
		AccessWeights: []float64{8, 1, 1},
	}
	s := New(g, nil, p, 5)
	counts := make([]int, 3)
	s.OnAccess = func(site, votes int, at float64) { counts[site]++ }
	s.RunAccesses(50_000)
	frac0 := float64(counts[0]) / 50_000
	if math.Abs(frac0-0.8) > 0.01 {
		t.Fatalf("site 0 fraction %g, want 0.8", frac0)
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatal("low-weight sites silent")
	}
}

func TestZeroWeightSilencesSite(t *testing.T) {
	g := graph.Path(3)
	p := Params{
		AccessMean: 1, FailMean: 50, RepairMean: 5,
		AccessWeights: []float64{1, 0, 1},
	}
	s := New(g, nil, p, 7)
	counts := make([]int, 3)
	s.OnAccess = func(site, votes int, at float64) { counts[site]++ }
	s.RunAccesses(10_000)
	if counts[1] != 0 {
		t.Fatalf("silenced site submitted %d accesses", counts[1])
	}
}

func TestWeightValidation(t *testing.T) {
	g := graph.Path(3)
	for name, p := range map[string]Params{
		"negative": {AccessMean: 1, FailMean: 1, RepairMean: 1, AccessWeights: []float64{1, -1, 1}},
		"length":   {AccessMean: 1, FailMean: 1, RepairMean: 1, AccessWeights: []float64{1, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s weights should panic", name)
				}
			}()
			New(g, nil, p, 1)
		}()
	}
}

func TestSkewedCollectMatchesWeightedModel(t *testing.T) {
	// A hotspot end-site on a path: the access-weighted availability must
	// match mixing the exact per-site densities with the same weights.
	g := graph.Path(4)
	const rel = 0.9
	weights := []float64{6, 2, 1, 1}
	p := Params{
		AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel,
		AccessWeights: weights,
	}
	m, _, err := Collect(g, nil, p, CollectConfig{
		Mode: TimeWeighted, Accesses: 300_000, Warmup: 10_000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := dist.Exact(g, nil, rel, rel)
	pmfs := make([]dist.PMF, len(fs))
	copy(pmfs, fs)
	fr := make([]float64, 4)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		fr[i] = w / sum
	}
	ref, err := core.NewModel(fr, fr, pmfs)
	if err != nil {
		t.Fatal(err)
	}
	for qr := 1; qr <= 2; qr++ {
		for _, alpha := range []float64{0, 0.5, 1} {
			got := m.Availability(alpha, qr)
			want := ref.Availability(alpha, qr)
			if math.Abs(got-want) > 0.03 {
				t.Fatalf("A(%g,%d) = %g, exact weighted model %g", alpha, qr, got, want)
			}
		}
	}
	// The skew must matter: the uniform-weight model disagrees with the
	// weighted one somewhere (sanity that the test is not vacuous).
	uni, err := core.NewModel(nil, nil, pmfs)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for qr := 1; qr <= 2; qr++ {
		if math.Abs(uni.Availability(1, qr)-ref.Availability(1, qr)) > 1e-6 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("weighted and uniform models coincide; skew test is vacuous")
	}
}

func TestSkewedSampledEstimator(t *testing.T) {
	// In sampled mode the per-site histograms fill proportionally to the
	// access weights.
	g := graph.Path(3)
	p := Params{
		AccessMean: 1, FailMean: 50, RepairMean: 5,
		AccessWeights: []float64{4, 1, 1},
	}
	s := New(g, nil, p, 11)
	est := core.NewEstimator(3, 3)
	s.AttachEstimator(est)
	s.RunAccesses(60_000)
	ratio := est.Weight(0) / est.Weight(1)
	if math.Abs(ratio-4) > 0.3 {
		t.Fatalf("weight ratio %g, want ≈ 4", ratio)
	}
}
