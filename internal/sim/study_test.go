package sim

import (
	"reflect"
	"testing"

	"quorumkit/internal/graph"
	"quorumkit/internal/obs"
	"quorumkit/internal/quorum"
)

// smallStudy is a fixed-size configuration used by the determinism and
// metamorphic tests: small enough to run in milliseconds, large enough to
// exercise warmup, batching, and both access channels.
func smallStudy() (g *graph.Graph, p Params, a quorum.Assignment, alpha float64, cfg StudyConfig) {
	g = graph.Complete(5)
	p = Params{AccessMean: 1, FailMean: 8, RepairMean: 2}
	a = quorum.Assignment{QR: 2, QW: 4}
	alpha = 0.5
	cfg = StudyConfig{
		Warmup: 500, BatchAccesses: 5000,
		MinBatches: 3, MaxBatches: 3, CIHalfWidth: 0.001, Seed: 9,
	}
	return
}

// TestStudyDeterminism: the same configuration must reproduce the identical
// Measurement, bit for bit, across invocations.
func TestStudyDeterminism(t *testing.T) {
	g, p, a, alpha, cfg := smallStudy()
	run := func() Measurement {
		m, err := MeasureAvailability(g, nil, p, a, alpha, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m1, m2 := run(), run(); !reflect.DeepEqual(m1, m2) {
		t.Fatalf("same config diverged:\n%+v\n%+v", m1, m2)
	}
}

// TestStudyMetamorphicObs: attaching a registry to the study must not
// change the measurement, and the registry's access counters must account
// for exactly the accesses the study ran (warmup included).
func TestStudyMetamorphicObs(t *testing.T) {
	g, p, a, alpha, cfg := smallStudy()
	bare, err := MeasureAvailability(g, nil, p, a, alpha, cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewTracing(obs.DefaultTraceCap)
	cfg.Obs = reg
	instrumented, err := MeasureAvailability(g, nil, p, a, alpha, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatalf("observation perturbed the study:\nbare:         %+v\ninstrumented: %+v",
			bare, instrumented)
	}

	s := reg.Snapshot()
	decided := s.Counter(obs.CSimAccessGrant) + s.Counter(obs.CSimAccessDeny)
	want := int64(instrumented.Batches) * (cfg.Warmup + cfg.BatchAccesses)
	if decided != want {
		t.Fatalf("registry saw %d access decisions, study ran %d", decided, want)
	}
	// Topology churn must have produced matching fail/repair counters and
	// trace events.
	fails := s.Counter(obs.CSimSiteFail)
	if fails == 0 {
		t.Fatalf("no site failures observed despite FailMean=%g", p.FailMean)
	}
	topoEvents := len(reg.Trace().Filter(obs.EvTopology))
	if topoEvents == 0 {
		t.Fatalf("no topology trace events recorded")
	}
}

// TestStudyObsRunDeterminism: two instrumented runs of the same seed must
// produce byte-identical registry snapshots (the trace may wrap, but totals
// and counters line up exactly).
func TestStudyObsRunDeterminism(t *testing.T) {
	g, p, a, alpha, cfg := smallStudy()
	run := func() obs.Snapshot {
		reg := obs.New()
		cfg.Obs = reg
		if _, err := MeasureAvailability(g, nil, p, a, alpha, cfg); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	if s1, s2 := run(), run(); s1 != s2 {
		t.Fatalf("same-seed instrumented studies produced different snapshots")
	}
}

// TestSimulatorAttachObsAgreesWithCounters: the registry's view of one
// simulator run must agree exactly with the simulator's own counters, and
// attaching must not disturb the run (AttachObs draws no randomness).
func TestSimulatorAttachObsAgreesWithCounters(t *testing.T) {
	g := graph.Ring(7)
	p := Params{AccessMean: 1, FailMean: 6, RepairMean: 2}
	a := quorum.Assignment{QR: 3, QW: 5}

	run := func(reg *obs.Registry) Counters {
		s := New(g, nil, p, 77)
		if reg != nil {
			s.AttachObs(reg)
		}
		s.SetProtocol(StaticProtocol{Assignment: a}, 0.6)
		s.RunAccesses(8000)
		return s.Counters()
	}

	bare := run(nil)
	reg := obs.New()
	instrumented := run(reg)
	if bare != instrumented {
		t.Fatalf("AttachObs changed the run: %+v vs %+v", bare, instrumented)
	}

	grants := instrumented.ReadsGranted + instrumented.WritesGranted
	denies := instrumented.ReadsDenied + instrumented.WritesDenied
	if got := reg.Counter(obs.CSimAccessGrant); got != grants {
		t.Fatalf("registry grants %d, simulator %d", got, grants)
	}
	if got := reg.Counter(obs.CSimAccessDeny); got != denies {
		t.Fatalf("registry denies %d, simulator %d", got, denies)
	}
	// Every failure eventually repairs in a long enough run; the counters
	// can differ only by in-flight breakage at the horizon.
	sf, sr := reg.Counter(obs.CSimSiteFail), reg.Counter(obs.CSimSiteRepair)
	if sf < sr || sf-sr > int64(g.N()) {
		t.Fatalf("site fail/repair counters inconsistent: %d vs %d", sf, sr)
	}
	lf, lr := reg.Counter(obs.CSimLinkFail), reg.Counter(obs.CSimLinkRepair)
	if lf < lr || lf-lr > int64(g.M()) {
		t.Fatalf("link fail/repair counters inconsistent: %d vs %d", lf, lr)
	}
}

// TestStudyGolden pins the exact measured values of the fixed small study.
// The simulator is fully deterministic (custom RNG, no map iteration, no
// wall clock), so these are stable across platforms; a change here means
// the simulation semantics changed, which must be deliberate.
func TestStudyGolden(t *testing.T) {
	g, p, a, alpha, cfg := smallStudy()
	m, err := MeasureAvailability(g, nil, p, a, alpha, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Batches != 3 {
		t.Fatalf("batches = %d, want 3", m.Batches)
	}
	const (
		wantOverall = 0.71453333333333335
		wantRead    = 0.78297423678912592
		wantWrite   = 0.6450401254996464
	)
	if m.Overall.Mean != wantOverall || m.Read.Mean != wantRead || m.Write.Mean != wantWrite {
		t.Fatalf("golden drift:\noverall %.17g want %.17g\nread    %.17g want %.17g\nwrite   %.17g want %.17g",
			m.Overall.Mean, wantOverall, m.Read.Mean, wantRead, m.Write.Mean, wantWrite)
	}
}
