package sim

import (
	"fmt"

	"quorumkit/internal/core"
	"quorumkit/internal/graph"
	"quorumkit/internal/obs"
	"quorumkit/internal/quorum"
	"quorumkit/internal/stats"
)

// StudyConfig reproduces the batching methodology of §5.2: discard a
// warm-up prefix, run fixed-length batches from a fresh initial state, and
// stop when the 95% confidence interval is tight enough (between MinBatches
// and MaxBatches batches).
type StudyConfig struct {
	Warmup        int64   // accesses discarded before measurement begins
	BatchAccesses int64   // accesses measured per batch
	MinBatches    int     // lower bound on batches (paper: 5)
	MaxBatches    int     // upper bound on batches (paper: 18)
	CIHalfWidth   float64 // stop when the 95% CI half-width is ≤ this
	Seed          uint64  // base seed; batch b uses Seed+b

	// Obs, when non-nil, receives topology and access events from every
	// batch simulator. Attaching it never perturbs the simulation: the
	// registry draws no randomness and schedules nothing.
	Obs *obs.Registry
}

// PaperStudy returns the paper's full-size study configuration: 100,000
// warm-up accesses, batches of 1,000,000 accesses, 5–18 batches, CI target
// ±0.5%. Scale down BatchAccesses/Warmup for quick runs.
func PaperStudy() StudyConfig {
	return StudyConfig{
		Warmup:        100_000,
		BatchAccesses: 1_000_000,
		MinBatches:    5,
		MaxBatches:    18,
		CIHalfWidth:   0.005,
		Seed:          1,
	}
}

func (c StudyConfig) validate() error {
	if c.BatchAccesses <= 0 || c.Warmup < 0 {
		return fmt.Errorf("sim: bad batch sizes %+v", c)
	}
	if c.MinBatches < 1 || c.MaxBatches < c.MinBatches {
		return fmt.Errorf("sim: bad batch counts %+v", c)
	}
	return nil
}

// Measurement is the outcome of a direct availability measurement.
type Measurement struct {
	Overall stats.Interval // ACC over all accesses
	Read    stats.Interval // over read accesses only
	Write   stats.Interval // over write accesses only
	Batches int
}

// MeasureAvailability measures the ACC availability of a static quorum
// assignment directly, by counting grants and denials exactly as the
// paper's simulator does: every access drawn read with probability α,
// granted iff the submitting site's component meets the quorum (down sites
// are components of size zero and deny everything).
func MeasureAvailability(g *graph.Graph, votes []int, p Params, a quorum.Assignment,
	alpha float64, cfg StudyConfig) (Measurement, error) {
	if err := cfg.validate(); err != nil {
		return Measurement{}, err
	}
	st := graph.NewState(g, votes)
	if err := a.Validate(st.TotalVotes()); err != nil {
		return Measurement{}, err
	}
	var all, rd, wr stats.BatchMeans
	batches := 0
	// The paper resets the network to the initial (all-up) state before
	// each batch; one simulator Reset to the per-batch seed does exactly
	// that — bit-identical to a fresh construction, without reallocating
	// the network state, event heap, or RNG.
	s := New(g, votes, p, cfg.Seed)
	if cfg.Obs != nil {
		s.AttachObs(cfg.Obs)
	}
	for b := 0; b < cfg.MaxBatches; b++ {
		if b > 0 {
			s.Reset(cfg.Seed + uint64(b))
		}
		s.SetProtocol(StaticProtocol{Assignment: a}, alpha)
		s.RunAccesses(cfg.Warmup)
		s.ResetCounters()
		s.RunAccesses(cfg.BatchAccesses)
		c := s.Counters()
		all.AddBatch(c.Availability())
		if alpha > 0 {
			rd.AddBatch(c.ReadAvailability())
		}
		if alpha < 1 {
			wr.AddBatch(c.WriteAvailability())
		}
		batches++
		if batches >= cfg.MinBatches && all.Converged(cfg.CIHalfWidth) {
			break
		}
	}
	return Measurement{
		Overall: all.Interval95(),
		Read:    rd.Interval95(),
		Write:   wr.Interval95(),
		Batches: batches,
	}, nil
}

// EstimationMode selects how the component-size densities are collected.
type EstimationMode int

const (
	// Sampled is the paper's on-line scheme: each access records its
	// component's vote total.
	Sampled EstimationMode = iota
	// TimeWeighted charges wall-clock occupancy between events (PASTA);
	// identical in expectation under Poisson accesses, far lower variance.
	TimeWeighted
)

// String implements fmt.Stringer.
func (m EstimationMode) String() string {
	switch m {
	case Sampled:
		return "sampled"
	case TimeWeighted:
		return "time-weighted"
	default:
		return fmt.Sprintf("EstimationMode(%d)", int(m))
	}
}

// CollectConfig configures density collection.
type CollectConfig struct {
	Mode     EstimationMode
	Accesses int64  // horizon expressed in expected access count
	Warmup   int64  // discarded prefix, same unit
	Seed     uint64 // simulation seed
}

// Collect runs one simulation and returns the estimated per-site densities
// wrapped in an optimizer Model, plus the raw estimator. This is the
// paper's full pipeline: simulate → approximate f_i on-line → feed Figure 1.
func Collect(g *graph.Graph, votes []int, p Params, cfg CollectConfig) (core.Model, *core.Estimator, error) {
	if cfg.Accesses <= 0 || cfg.Warmup < 0 {
		return core.Model{}, nil, fmt.Errorf("sim: bad collect horizon %+v", cfg)
	}
	s := New(g, votes, p, cfg.Seed)
	est := core.NewEstimator(g.N(), s.State().TotalVotes())
	switch cfg.Mode {
	case Sampled:
		if cfg.Warmup > 0 {
			s.RunAccesses(cfg.Warmup)
		}
		s.AttachEstimator(est)
		s.RunAccesses(cfg.Accesses)
	case TimeWeighted:
		// Convert the access horizon into simulated time using the total
		// access rate across sites.
		perUnit := p.totalAccessRate(g.N())
		warmT := float64(cfg.Warmup) / perUnit
		runT := float64(cfg.Accesses) / perUnit
		s.RunUntil(warmT)
		s.AttachTimeWeighted(est, nil)
		s.RunUntil(warmT + runT)
	default:
		return core.Model{}, nil, fmt.Errorf("sim: unknown estimation mode %v", cfg.Mode)
	}
	// With skewed access rates, site i receives the fraction w_i/Σw of all
	// requests, which is exactly the paper's r_i (= w_i here, reads and
	// writes sharing the submission distribution).
	weights := p.accessFractions(g.N())
	m, err := est.Model(weights, weights)
	if err != nil {
		return core.Model{}, nil, err
	}
	return m, est, nil
}

// totalAccessRate returns the aggregate access rate (accesses per time
// unit) over n sites.
func (p Params) totalAccessRate(n int) float64 {
	if p.AccessWeights == nil {
		return float64(n) / p.AccessMean
	}
	sum := 0.0
	for _, w := range p.AccessWeights {
		sum += w
	}
	return sum / p.AccessMean
}

// accessFractions returns the per-site access fractions r_i (nil for the
// uniform distribution).
func (p Params) accessFractions(n int) []float64 {
	if p.AccessWeights == nil {
		return nil
	}
	sum := 0.0
	for _, w := range p.AccessWeights {
		sum += w
	}
	out := make([]float64, n)
	for i, w := range p.AccessWeights {
		out[i] = w / sum
	}
	return out
}

// CollectSurv runs one time-weighted simulation recording the
// largest-component vote distribution for SURV-metric optimization.
func CollectSurv(g *graph.Graph, votes []int, p Params, cfg CollectConfig) (core.Model, error) {
	if cfg.Accesses <= 0 || cfg.Warmup < 0 {
		return core.Model{}, fmt.Errorf("sim: bad collect horizon %+v", cfg)
	}
	s := New(g, votes, p, cfg.Seed)
	est := core.NewEstimator(g.N(), s.State().TotalVotes())
	surv := core.NewSurvEstimator(s.State().TotalVotes())
	perUnit := p.totalAccessRate(g.N())
	warmT := float64(cfg.Warmup) / perUnit
	runT := float64(cfg.Accesses) / perUnit
	s.RunUntil(warmT)
	s.AttachTimeWeighted(est, surv)
	s.RunUntil(warmT + runT)
	return surv.Model()
}
