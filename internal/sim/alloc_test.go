package sim

import (
	"testing"

	"quorumkit/internal/graph"
	"quorumkit/internal/obs"
	"quorumkit/internal/quorum"
	"quorumkit/internal/topo"
)

// TestSteadyStateAccessZeroAlloc: after construction and warm-up, driving
// accesses through the simulator must not touch the heap — the event heap
// is pre-sized, RNG scratch is embedded, and observability counters are
// batched into plain fields. This is the allocation contract the committed
// BENCH_core.json enforces at 1001 sites; here it is a hard test at a size
// fast enough for every `go test` run.
func TestSteadyStateAccessZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ring101", graph.Ring(101)},
		{"chorded101x4", topo.Build(101, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.g, nil, Params{AccessMean: 1, FailMean: 10, RepairMean: 2}, 7)
			T := s.State().TotalVotes()
			s.SetProtocol(StaticProtocol{Assignment: quorum.Assignment{QR: T/2 + 1, QW: T/2 + 1}}, 0.5)
			s.RunAccesses(2_000) // warm-up: reach steady state
			if n := testing.AllocsPerRun(10, func() {
				s.RunAccesses(500)
			}); n != 0 {
				t.Fatalf("steady-state RunAccesses allocates %.1f objects per run, want 0", n)
			}
		})
	}
}

// TestSteadyStateZeroAllocWithObs: batched counters keep the hot path
// allocation-free even with a metrics registry attached (tracing off).
func TestSteadyStateZeroAllocWithObs(t *testing.T) {
	g := graph.Ring(51)
	s := New(g, nil, Params{AccessMean: 1, FailMean: 10, RepairMean: 2}, 7)
	s.AttachObs(obs.New())
	T := s.State().TotalVotes()
	s.SetProtocol(StaticProtocol{Assignment: quorum.Assignment{QR: T/2 + 1, QW: T/2 + 1}}, 0.5)
	s.RunAccesses(2_000)
	if n := testing.AllocsPerRun(10, func() {
		s.RunAccesses(500)
	}); n != 0 {
		t.Fatalf("steady-state RunAccesses with obs allocates %.1f objects per run, want 0", n)
	}
}

// TestFamilyTallyZeroAlloc: the sweep's tally mode shares the hot path.
func TestFamilyTallyZeroAlloc(t *testing.T) {
	g := graph.Ring(101)
	s := New(g, nil, Params{AccessMean: 1, FailMean: 10, RepairMean: 2}, 7)
	tally := newFamilyTally(s.State().TotalVotes())
	s.setFamilyTally(tally, 0.5)
	s.RunAccesses(2_000)
	if n := testing.AllocsPerRun(10, func() {
		s.RunAccesses(500)
	}); n != 0 {
		t.Fatalf("steady-state tally RunAccesses allocates %.1f objects per run, want 0", n)
	}
}
