package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"quorumkit/internal/rng"
)

// TestHeapPropertySorted: any sequence of pushes pops in non-decreasing
// time order with FIFO tie-breaking.
func TestHeapPropertySorted(t *testing.T) {
	f := func(raw []uint16) bool {
		var h eventHeap
		for i, r := range raw {
			// Coarse quantization produces plenty of ties.
			h.push(float64(r%16), evAccess, i)
		}
		lastAt := -1.0
		lastSeq := uint64(0)
		for h.len() > 0 {
			e := h.pop()
			if e.at < lastAt {
				return false
			}
			if e.at == lastAt && e.seq < lastSeq {
				return false // FIFO among ties
			}
			lastAt, lastSeq = e.at, e.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	src := rng.New(99)
	var h eventHeap
	var popped []float64
	pending := 0
	for step := 0; step < 5000; step++ {
		if pending == 0 || src.Bernoulli(0.6) {
			h.push(src.Float64()*100, evAccess, step)
			pending++
		} else {
			popped = append(popped, h.pop().at)
			pending--
		}
	}
	for h.len() > 0 {
		popped = append(popped, h.pop().at)
	}
	// Not globally sorted (interleaving), but every drain segment is; a
	// cheap but strong invariant: re-inserting everything and draining
	// yields the global sorted order.
	var h2 eventHeap
	for i, at := range popped {
		h2.push(at, evAccess, i)
	}
	var all []float64
	for h2.len() > 0 {
		all = append(all, h2.pop().at)
	}
	if !sort.Float64sAreSorted(all) {
		t.Fatal("drain not sorted")
	}
	if len(all) != len(popped) {
		t.Fatal("lost events")
	}
}

func TestHeapPeek(t *testing.T) {
	var h eventHeap
	h.push(5, evAccess, 0)
	h.push(2, evSiteFail, 1)
	if h.peek().at != 2 {
		t.Fatalf("peek %v", h.peek())
	}
	if h.pop().at != 2 || h.peek().at != 5 {
		t.Fatal("pop/peek order")
	}
}
