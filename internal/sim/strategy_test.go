package sim

import (
	"math"
	"reflect"
	"testing"

	"quorumkit/internal/graph"
	"quorumkit/internal/obs"
	"quorumkit/internal/quorum"
	"quorumkit/internal/strategy"
)

// healthyParams: component failures so rare they never occur within the
// test horizon, making the simulator a pure queueing view of the strategy —
// the regime the LP models exactly.
func healthyParams() Params {
	return Params{AccessMean: 1, FailMean: 1e12, RepairMean: 1e-6}
}

func strategyStudy() StudyConfig {
	return StudyConfig{
		Warmup:        1_000,
		BatchAccesses: 200_000,
		MinBatches:    5,
		MaxBatches:    5,
		CIHalfWidth:   0.001,
		Seed:          11,
	}
}

// TestStrategyLoadAgreesWithLP is the PR's simulator-agreement criterion:
// at negligible failure rates the measured per-site loads and the
// throughput ceiling land within 2% of the LP's closed-form prediction.
func TestStrategyLoadAgreesWithLP(t *testing.T) {
	sys := strategy.CaseStudySystem()
	const fr = 0.7
	res, err := strategy.OptimizeCapacity(sys, strategy.SingleFr(fr), strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureStrategyLoad(graph.Complete(5), sys, healthyParams(),
		res.Strategy, fr, strategyStudy())
	if err != nil {
		t.Fatal(err)
	}
	if m.Overall.Mean < 0.9999 {
		t.Fatalf("availability %.6f with no failures", m.Overall.Mean)
	}
	want := res.Strategy.SiteLoads(sys, fr)
	worst := 0.0
	for _, l := range want {
		worst = math.Max(worst, l)
	}
	for x, l := range want {
		// Sites carrying real load must agree to 2%; idle sites must stay
		// within 2% of the bottleneck in absolute terms.
		if l > worst/10 {
			if rel := math.Abs(m.PerSite[x]-l) / l; rel > 0.02 {
				t.Errorf("site %d load %.6g, LP predicts %.6g (rel %.3f)", x, m.PerSite[x], l, rel)
			}
		} else if math.Abs(m.PerSite[x]-l) > 0.02*worst {
			t.Errorf("site %d load %.6g, LP predicts %.6g", x, m.PerSite[x], l)
		}
	}
	if rel := math.Abs(m.MaxLoad.Mean-worst) / worst; rel > 0.02 {
		t.Errorf("max load %.6g, LP predicts %.6g (rel %.3f)", m.MaxLoad.Mean, worst, rel)
	}
	if rel := math.Abs(m.Capacity.Mean-res.Capacity) / res.Capacity; rel > 0.02 {
		t.Errorf("capacity %.1f, LP predicts %.1f (rel %.3f)", m.Capacity.Mean, res.Capacity, rel)
	}
}

// TestStrategyMeasurementDeterministic: the measurement is a pure function
// of its inputs — same seed, same result, bit for bit.
func TestStrategyMeasurementDeterministic(t *testing.T) {
	sys := strategy.CaseStudySystem()
	res, err := strategy.OptimizeCapacity(sys, strategy.CaseStudyFrDist(), strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := strategyStudy()
	cfg.BatchAccesses = 20_000
	p := PaperParams()
	a, err := MeasureStrategyLoad(graph.Ring(5), sys, p, res.Strategy, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureStrategyLoad(graph.Ring(5), sys, p, res.Strategy, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	c, err := MeasureStrategyLoad(graph.Ring(5), sys, p, res.Strategy, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical measurements")
	}
}

// TestStrategyTrajectoryMatchesProtocol: attaching a strategy instead of a
// protocol leaves the event trajectory untouched — the same number of
// accesses and the same simulated clock, because quorum sampling draws
// only from the policy's private substream.
func TestStrategyTrajectoryMatchesProtocol(t *testing.T) {
	sys := strategy.CaseStudySystem()
	res, err := strategy.OptimizeCapacity(sys, strategy.CaseStudyFrDist(), strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewStrategyPolicy(res.Strategy, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	p := PaperParams()
	g := graph.Ring(5)

	s1 := New(g, sys.Votes, p, 7)
	s1.SetStrategyPolicy(sp, 0.5)
	s1.RunAccesses(50_000)

	s2 := New(g, sys.Votes, p, 7)
	s2.SetProtocol(StaticProtocol{Assignment: quorum.Assignment{QR: sys.QR, QW: sys.QW}}, 0.5)
	s2.RunAccesses(50_000)

	if s1.Now() != s2.Now() || s1.AccessCount() != s2.AccessCount() {
		t.Fatalf("trajectories diverged: t=%g/%g accesses=%d/%d",
			s1.Now(), s2.Now(), s1.AccessCount(), s2.AccessCount())
	}
	// Both judge the same read/write split (shared Bernoulli draws).
	c1, c2 := s1.Counters(), s2.Counters()
	if c1.ReadsGranted+c1.ReadsDenied != c2.ReadsGranted+c2.ReadsDenied {
		t.Fatalf("read/write split diverged: %+v vs %+v", c1, c2)
	}
}

// TestStrategyObsCounters: the CStrategy* counters account for every access
// and every probe once.
func TestStrategyObsCounters(t *testing.T) {
	sys := strategy.CaseStudySystem()
	res, err := strategy.OptimizeCapacity(sys, strategy.CaseStudyFrDist(), strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewStrategyPolicy(res.Strategy, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	s := New(graph.Ring(5), sys.Votes, PaperParams(), 1)
	s.AttachObs(reg)
	s.SetStrategyPolicy(sp, 0.5)
	const accesses = 20_000
	s.RunAccesses(accesses)
	c := s.Counters()
	granted := reg.Counter(obs.CStrategyRead) + reg.Counter(obs.CStrategyWrite)
	if granted != c.ReadsGranted+c.WritesGranted {
		t.Fatalf("obs grants %d, counters say %d", granted, c.ReadsGranted+c.WritesGranted)
	}
	if deny := reg.Counter(obs.CStrategyDeny); deny != c.ReadsDenied+c.WritesDenied {
		t.Fatalf("obs denies %d, counters say %d", deny, c.ReadsDenied+c.WritesDenied)
	}
	if probes := reg.Counter(obs.CStrategyProbe); probes < 3*accesses {
		// Every quorum in the case-study pools has ≥ 3 members.
		t.Fatalf("only %d probes over %d accesses", probes, accesses)
	}
}

// TestStrategyGridInvariance: RunGrid with a strategy attached returns
// bit-identical cells for every worker count.
func TestStrategyGridInvariance(t *testing.T) {
	sys := strategy.CaseStudySystem()
	res, err := strategy.OptimizeCapacity(sys, strategy.CaseStudyFrDist(), strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := GridSpec{
		Sites:    5,
		Chords:   []int{0, 1},
		Alphas:   []float64{0.5, 1},
		Strategy: &StrategySpec{Sys: sys, Strat: res.Strategy},
	}
	cfg := StudyConfig{
		Warmup: 200, BatchAccesses: 5_000,
		MinBatches: 2, MaxBatches: 3, CIHalfWidth: 0.01, Seed: 5,
	}
	var runs [][]GridCell
	for _, workers := range []int{1, 4} {
		spec.Workers = workers
		cells, err := RunGrid(spec, PaperParams(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cells {
			if cells[i].Strategy == nil {
				t.Fatalf("workers=%d: cell %d has no strategy measurement", workers, i)
			}
		}
		runs = append(runs, cells)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatal("grid cells differ between worker counts")
	}
}

// TestStrategyPolicyRejects covers validation and attachment errors.
func TestStrategyPolicyRejects(t *testing.T) {
	sys := strategy.CaseStudySystem()
	good := strategy.Strategy{
		ReadQuorums: []strategy.Quorum{{0, 1, 2}}, ReadProbs: []float64{1},
		WriteQuorums: []strategy.Quorum{{0, 1, 2}}, WriteProbs: []float64{1},
	}
	if _, err := NewStrategyPolicy(strategy.Strategy{}, 5, 0); err == nil {
		t.Error("empty strategy accepted")
	}
	if _, err := NewStrategyPolicy(good, 2, 0); err == nil {
		t.Error("out-of-range quorum accepted")
	}
	cfg := strategyStudy()
	if _, err := MeasureStrategyLoad(graph.Ring(7), sys, PaperParams(), good, 0.5, cfg); err == nil {
		t.Error("graph/system size mismatch accepted")
	}
	bad := good
	bad.WriteQuorums = []strategy.Quorum{{0, 1}} // under the write threshold
	if _, err := MeasureStrategyLoad(graph.Ring(5), sys, PaperParams(), bad, 0.5, cfg); err == nil {
		t.Error("invalid strategy accepted")
	}
	badCfg := cfg
	badCfg.BatchAccesses = 0
	if _, err := MeasureStrategyLoad(graph.Ring(5), sys, PaperParams(), good, 0.5, badCfg); err == nil {
		t.Error("bad study config accepted")
	}

	sp, err := NewStrategyPolicy(good, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(graph.Ring(5), nil, PaperParams(), 1)
	for name, f := range map[string]func(){
		"alpha": func() { s.SetStrategyPolicy(sp, 1.5) },
		"size":  func() { New(graph.Ring(7), nil, PaperParams(), 1).SetStrategyPolicy(sp, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
