package sim

import (
	"reflect"
	"testing"

	"quorumkit/internal/rng"
	"quorumkit/internal/topo"
)

func smallGrid() (GridSpec, Params, StudyConfig) {
	spec := GridSpec{Sites: 11, Chords: []int{0, 2}, Alphas: []float64{0.25, 0.75}}
	p := Params{AccessMean: 1, FailMean: 8, RepairMean: 2}
	cfg := StudyConfig{Warmup: 100, BatchAccesses: 2_000,
		MinBatches: 2, MaxBatches: 3, CIHalfWidth: 0.02, Seed: 9}
	return spec, p, cfg
}

// TestGridWorkerInvariance: sharding is pure wall-clock — the grid result
// is bit-identical for every worker count, because each cell's RNG
// substream is a function of the study seed and the cell's grid position
// alone.
func TestGridWorkerInvariance(t *testing.T) {
	spec, p, cfg := smallGrid()
	var base []GridCell
	for _, workers := range []int{1, 2, 7} {
		spec.Workers = workers
		cells, err := RunGrid(spec, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = cells
			continue
		}
		if !reflect.DeepEqual(cells, base) {
			t.Fatalf("grid with %d workers differs from 1-worker result", workers)
		}
	}
}

// TestGridCellMatchesDirectSweep: every cell must equal a direct Sweep of
// its configuration seeded with the cell's published substream — the
// determinism contract callers rely on to re-run a single cell.
func TestGridCellMatchesDirectSweep(t *testing.T) {
	spec, p, cfg := smallGrid()
	cells, err := RunGrid(spec, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spec.Chords) * len(spec.Alphas); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for i, cell := range cells {
		if cell.Seed != rng.SubSeed(cfg.Seed, uint64(i)) {
			t.Fatalf("cell %d seed %#x is not the substream of index %d", i, cell.Seed, i)
		}
		cellCfg := cfg
		cellCfg.Seed = cell.Seed
		family, err := Sweep(topo.Build(spec.Sites, cell.Chords), nil, p, cell.Alpha, cellCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cell.Family, family) {
			t.Fatalf("cell %d (chords=%d α=%g) differs from direct sweep", i, cell.Chords, cell.Alpha)
		}
		if cell.BestQR < 1 || cell.BestQR > len(family) {
			t.Fatalf("cell %d BestQR %d out of range", i, cell.BestQR)
		}
		for qr := 1; qr <= len(family); qr++ {
			if family[qr-1].Overall.Mean > family[cell.BestQR-1].Overall.Mean {
				t.Fatalf("cell %d BestQR %d is not the argmax", i, cell.BestQR)
			}
		}
	}
}

// TestGridDefaults: zero-value axes resolve to the paper's grid.
func TestGridDefaults(t *testing.T) {
	spec := GridSpec{}
	if n := spec.sites(); n != topo.Sites {
		t.Fatalf("default sites %d, want %d", n, topo.Sites)
	}
	for _, c := range spec.chords() {
		if c > topo.MaxChords(topo.Sites) {
			t.Fatalf("default chord count %d exceeds the ring's capacity", c)
		}
	}
	if !reflect.DeepEqual(spec.alphas(), PaperAlphas) {
		t.Fatalf("default alphas %v", spec.alphas())
	}
	// Small rings clamp the paper's chord axis.
	if got := (GridSpec{Sites: 7}).chords(); len(got) == 0 || got[len(got)-1] > topo.MaxChords(7) {
		t.Fatalf("clamped chords %v for 7 sites", got)
	}
}

// TestGridValidation rejects malformed specs and configs.
func TestGridValidation(t *testing.T) {
	_, p, cfg := smallGrid()
	for _, spec := range []GridSpec{
		{Sites: 3},
		{Sites: 11, Chords: []int{-1}},
		{Sites: 11, Chords: []int{topo.MaxChords(11) + 1}},
		{Sites: 11, Alphas: []float64{1.5}},
		{Sites: 11, Chords: []int{}},
	} {
		if _, err := RunGrid(spec, p, cfg); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
	spec, p, _ := smallGrid()
	if _, err := RunGrid(spec, p, StudyConfig{}); err == nil {
		t.Fatal("invalid study config accepted")
	}
}
