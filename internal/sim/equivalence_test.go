package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/stats"
	"quorumkit/internal/topo"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// measureFresh is the pre-optimization measurement loop, inlined: a fresh
// simulator per batch, no state reuse, no pre-sizing, no counter batching.
// It is the metamorphic oracle for the zero-alloc/reuse refactor — the
// optimized path must reproduce it byte for byte.
func measureFresh(g *graph.Graph, votes []int, p Params, a quorum.Assignment,
	alpha float64, cfg StudyConfig) Measurement {
	var all, rd, wr stats.BatchMeans
	batches := 0
	for b := 0; b < cfg.MaxBatches; b++ {
		s := New(g, votes, p, cfg.Seed+uint64(b))
		s.SetProtocol(StaticProtocol{Assignment: a}, alpha)
		s.RunAccesses(cfg.Warmup)
		s.ResetCounters()
		s.RunAccesses(cfg.BatchAccesses)
		c := s.Counters()
		all.AddBatch(c.Availability())
		if alpha > 0 {
			rd.AddBatch(c.ReadAvailability())
		}
		if alpha < 1 {
			wr.AddBatch(c.WriteAvailability())
		}
		batches++
		if batches >= cfg.MinBatches && all.Converged(cfg.CIHalfWidth) {
			break
		}
	}
	return Measurement{
		Overall: all.Interval95(),
		Read:    rd.Interval95(),
		Write:   wr.Interval95(),
		Batches: batches,
	}
}

// equivalenceCases are shared by the metamorphic test and the golden
// fixture: three topology shapes, α strictly interior so every interval in
// the fixture is finite and JSON-serializable.
type equivalenceCase struct {
	Name  string  `json:"name"`
	Alpha float64 `json:"alpha"`
	QR    int     `json:"q_r"`
	build func() (*graph.Graph, []int)
}

func equivalenceCases() []equivalenceCase {
	return []equivalenceCase{
		{Name: "ring9", Alpha: 0.5, QR: 3,
			build: func() (*graph.Graph, []int) { return graph.Ring(9), nil }},
		{Name: "chorded11x2", Alpha: 0.75, QR: 4,
			build: func() (*graph.Graph, []int) { return topo.Build(11, 2), nil }},
		{Name: "complete7", Alpha: 0.25, QR: 2,
			build: func() (*graph.Graph, []int) { return graph.Complete(7), nil }},
	}
}

func equivalenceConfig() (Params, StudyConfig) {
	p := Params{AccessMean: 1, FailMean: 9, RepairMean: 3}
	cfg := StudyConfig{Warmup: 300, BatchAccesses: 5_000,
		MinBatches: 3, MaxBatches: 6, CIHalfWidth: 0.01, Seed: 42}
	return p, cfg
}

// TestMeasureMatchesFreshSimulators: the optimized measurement path (one
// reused simulator, Reset between batches, batched obs counters) must be
// byte-identical to the pre-optimization fresh-simulator-per-batch loop for
// identical seeds, across ring, chorded, and fully-connected topologies.
func TestMeasureMatchesFreshSimulators(t *testing.T) {
	p, cfg := equivalenceConfig()
	for _, tc := range equivalenceCases() {
		t.Run(tc.Name, func(t *testing.T) {
			g, votes := tc.build()
			st := graph.NewState(g, votes)
			a := quorum.Assignment{QR: tc.QR, QW: st.TotalVotes() - tc.QR + 1}
			want := measureFresh(g, votes, p, a, tc.Alpha, cfg)
			got, err := MeasureAvailability(g, votes, p, a, tc.Alpha, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("reused-simulator path diverged:\n got  %+v\n want %+v", got, want)
			}
		})
	}
}

// TestResetMatchesNew: Reset(seed) must leave the simulator bit-identical
// to a freshly constructed one — same RNG stream, same heap order, same
// counters — checked by running both to the same horizon twice over.
func TestResetMatchesNew(t *testing.T) {
	g := topo.Build(11, 2)
	p := Params{AccessMean: 1, FailMean: 7, RepairMean: 2,
		Shock: &ShockParams{Mean: 40, Size: 3, Duration: 4}}
	a := quorum.Assignment{QR: 4, QW: 8}

	run := func(s *Simulator) Counters {
		s.SetProtocol(StaticProtocol{Assignment: a}, 0.5)
		s.RunAccesses(2_000)
		return s.Counters()
	}
	s := New(g, nil, p, 1)
	first := run(s)

	for seed := uint64(1); seed <= 3; seed++ {
		s.Reset(seed)
		got := run(s)
		want := run(New(g, nil, p, seed))
		if got != want {
			t.Fatalf("seed %d: reset counters %+v, fresh %+v", seed, got, want)
		}
		if seed == 1 && got != first {
			t.Fatalf("reset to original seed did not reproduce the original run")
		}
	}
}

type equivalenceFixture struct {
	Cases []struct {
		equivalenceCase
		Measurement Measurement `json:"measurement"`
	} `json:"cases"`
}

// TestEquivalenceGolden pins the exact measurements of the equivalence
// cases as a committed fixture, so any change to the simulator's draw
// order, counter semantics, or convergence rule — however plausible — shows
// up as a byte-level diff. Regenerate deliberately with `go test -run
// Golden -update ./internal/sim`.
func TestEquivalenceGolden(t *testing.T) {
	p, cfg := equivalenceConfig()
	var fx equivalenceFixture
	for _, tc := range equivalenceCases() {
		g, votes := tc.build()
		st := graph.NewState(g, votes)
		a := quorum.Assignment{QR: tc.QR, QW: st.TotalVotes() - tc.QR + 1}
		m, err := MeasureAvailability(g, votes, p, a, tc.Alpha, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fx.Cases = append(fx.Cases, struct {
			equivalenceCase
			Measurement Measurement `json:"measurement"`
		}{tc, m})
	}
	got, err := json.MarshalIndent(&fx, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "equivalence.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("measurements diverged from the golden fixture %s\n got: %s\nwant: %s\n(rerun with -update only if the change is intentional)", path, got, want)
	}
}
