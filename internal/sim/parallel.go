package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/stats"
)

// testBatchRan, when non-nil, is invoked with the index of every batch a
// parallel worker actually simulates. Test-only: the early-stop tests use
// it to assert that batches past the convergence point are cancelled.
var testBatchRan func(b int)

// MeasureAvailabilityParallel is MeasureAvailability with batches executed
// concurrently on up to GOMAXPROCS workers. Batches are independent
// simulations with per-batch seeds (Seed+b), exactly as in the serial
// runner, and the convergence rule is applied incrementally in batch order
// as the completed prefix grows — so the returned Measurement is
// bit-identical to the serial result for the same configuration. Once the
// prefix converges, batches not yet started are cancelled, so the wasted
// work is bounded by the batches in flight at that instant rather than by
// MaxBatches. Each worker reuses one simulator across its batches.
func MeasureAvailabilityParallel(g *graph.Graph, votes []int, p Params, a quorum.Assignment,
	alpha float64, cfg StudyConfig) (Measurement, error) {
	if err := cfg.validate(); err != nil {
		return Measurement{}, err
	}
	st := graph.NewState(g, votes)
	if err := a.Validate(st.TotalVotes()); err != nil {
		return Measurement{}, err
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.MaxBatches {
		workers = cfg.MaxBatches
	}

	// Completion tracking: counters land in batch order into the shared
	// accumulator as the contiguous done-prefix advances; convergence of
	// the prefix publishes a cutoff that cancels batches not yet started.
	var (
		mu        sync.Mutex
		done      = make([]bool, cfg.MaxBatches)
		counters  = make([]Counters, cfg.MaxBatches)
		all       stats.BatchMeans
		rd, wr    stats.BatchMeans
		batches   int
		converged bool
		prefix    int
		cutoff    = int64(cfg.MaxBatches)
	)
	finish := func(b int, c Counters) {
		mu.Lock()
		defer mu.Unlock()
		counters[b] = c
		done[b] = true
		for prefix < cfg.MaxBatches && done[prefix] {
			if !converged {
				cc := counters[prefix]
				all.AddBatch(cc.Availability())
				if alpha > 0 {
					rd.AddBatch(cc.ReadAvailability())
				}
				if alpha < 1 {
					wr.AddBatch(cc.WriteAvailability())
				}
				batches++
				if batches >= cfg.MinBatches && all.Converged(cfg.CIHalfWidth) {
					converged = true
					atomic.StoreInt64(&cutoff, int64(prefix)+1)
				}
			}
			prefix++
		}
	}

	next := make(chan int, cfg.MaxBatches)
	for b := 0; b < cfg.MaxBatches; b++ {
		next <- b
	}
	close(next)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s *Simulator
			for b := range next {
				if int64(b) >= atomic.LoadInt64(&cutoff) {
					continue // prefix already converged before this batch
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							errOnce.Do(func() { firstErr = fmt.Errorf("sim: batch %d panicked: %v", b, r) })
						}
					}()
					if testBatchRan != nil {
						testBatchRan(b)
					}
					if s == nil {
						s = New(g, votes, p, cfg.Seed+uint64(b))
					} else {
						s.Reset(cfg.Seed + uint64(b))
					}
					s.SetProtocol(StaticProtocol{Assignment: a}, alpha)
					s.RunAccesses(cfg.Warmup)
					s.ResetCounters()
					s.RunAccesses(cfg.BatchAccesses)
					finish(b, s.Counters())
				}()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Measurement{}, firstErr
	}
	return Measurement{
		Overall: all.Interval95(),
		Read:    rd.Interval95(),
		Write:   wr.Interval95(),
		Batches: batches,
	}, nil
}

// SweepReference runs MeasureAvailability for every assignment in the
// paper's family concurrently (one goroutine per read quorum, capped at
// GOMAXPROCS) and returns the measurements indexed by q_r−1.
//
// This is the seed implementation of the family sweep: it simulates the
// identical trajectory once per family member, costing ⌊T/2⌋ full
// measurement runs where Sweep costs one. It is retained as the oracle for
// the sweep-equivalence tests and as the baseline the committed
// BENCH_core.json speedup figure is measured against; new callers should
// use Sweep.
func SweepReference(g *graph.Graph, votes []int, p Params, alpha float64,
	cfg StudyConfig) ([]Measurement, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st := graph.NewState(g, votes)
	T := st.TotalVotes()
	family := quorum.Enumerate(T)
	out := make([]Measurement, len(family))
	errs := make([]error, len(family))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(family) {
		workers = len(family)
	}
	next := make(chan int, len(family))
	for i := range family {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = MeasureAvailability(g, votes, p, family[i], alpha, cfg)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
