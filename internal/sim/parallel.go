package sim

import (
	"fmt"
	"runtime"
	"sync"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/stats"
)

// MeasureAvailabilityParallel is MeasureAvailability with batches executed
// concurrently on up to GOMAXPROCS workers. Batches are independent
// simulations with per-batch seeds (Seed+b), exactly as in the serial
// runner, and the convergence rule is applied in batch order afterwards —
// so the returned Measurement is bit-identical to the serial result for
// the same configuration. The trade-off is that up to MaxBatches batches
// are computed even when the CI converges earlier; wall-clock time still
// drops by roughly the worker count on multicore hosts.
func MeasureAvailabilityParallel(g *graph.Graph, votes []int, p Params, a quorum.Assignment,
	alpha float64, cfg StudyConfig) (Measurement, error) {
	if err := cfg.validate(); err != nil {
		return Measurement{}, err
	}
	st := graph.NewState(g, votes)
	if err := a.Validate(st.TotalVotes()); err != nil {
		return Measurement{}, err
	}

	type batchOut struct {
		c Counters
	}
	results := make([]batchOut, cfg.MaxBatches)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.MaxBatches {
		workers = cfg.MaxBatches
	}
	var wg sync.WaitGroup
	next := make(chan int, cfg.MaxBatches)
	for b := 0; b < cfg.MaxBatches; b++ {
		next <- b
	}
	close(next)
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							errOnce.Do(func() { firstErr = fmt.Errorf("sim: batch %d panicked: %v", b, r) })
						}
					}()
					s := New(g, votes, p, cfg.Seed+uint64(b))
					s.SetProtocol(StaticProtocol{Assignment: a}, alpha)
					s.RunAccesses(cfg.Warmup)
					s.ResetCounters()
					s.RunAccesses(cfg.BatchAccesses)
					results[b].c = s.Counters()
				}()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Measurement{}, firstErr
	}

	// Replay the serial convergence rule over the precomputed batches.
	var all, rd, wr stats.BatchMeans
	batches := 0
	for b := 0; b < cfg.MaxBatches; b++ {
		c := results[b].c
		all.AddBatch(c.Availability())
		if alpha > 0 {
			rd.AddBatch(c.ReadAvailability())
		}
		if alpha < 1 {
			wr.AddBatch(c.WriteAvailability())
		}
		batches++
		if batches >= cfg.MinBatches && all.Converged(cfg.CIHalfWidth) {
			break
		}
	}
	return Measurement{
		Overall: all.Interval95(),
		Read:    rd.Interval95(),
		Write:   wr.Interval95(),
		Batches: batches,
	}, nil
}

// Sweep runs MeasureAvailability for every assignment in the paper's
// family concurrently (one goroutine per read quorum, capped at
// GOMAXPROCS) and returns the measurements indexed by q_r−1. This measures
// a full figure curve by direct simulation rather than through the
// estimator — the expensive cross-validation path.
func Sweep(g *graph.Graph, votes []int, p Params, alpha float64,
	cfg StudyConfig) ([]Measurement, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st := graph.NewState(g, votes)
	T := st.TotalVotes()
	family := quorum.Enumerate(T)
	out := make([]Measurement, len(family))
	errs := make([]error, len(family))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(family) {
		workers = len(family)
	}
	next := make(chan int, len(family))
	for i := range family {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = MeasureAvailability(g, votes, p, family[i], alpha, cfg)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
