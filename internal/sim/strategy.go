package sim

import (
	"fmt"

	"quorumkit/internal/graph"
	"quorumkit/internal/obs"
	"quorumkit/internal/rng"
	"quorumkit/internal/stats"
	"quorumkit/internal/strategy"
)

// StrategyPolicy judges accesses against a randomized quorum strategy:
// each access samples a read or write quorum from the strategy's
// distribution and is granted iff every member of the sampled quorum lies
// in the submitting site's network component. Quorum sampling draws from a
// dedicated RNG substream, never the simulator's event source, so attaching
// a strategy leaves the failure/repair/access trajectory bit-identical to a
// protocol run over the same seed — and sampling stays deterministic for a
// given (strategy, seed) pair no matter what the network does.
type StrategyPolicy struct {
	strat   strategy.Strategy
	sampler *strategy.Sampler
	src     *rng.Source

	// Per-site service tallies: how many read (write) quorum memberships
	// each site served across granted accesses. These are the raw material
	// of the empirical load measurement.
	reads, writes []int64
	granted       int64
}

// NewStrategyPolicy compiles a strategy for simulation over n sites. The
// seed starts the policy's private sampling substream.
func NewStrategyPolicy(st strategy.Strategy, n int, seed uint64) (*StrategyPolicy, error) {
	for _, pool := range [][]strategy.Quorum{st.ReadQuorums, st.WriteQuorums} {
		if len(pool) == 0 {
			return nil, fmt.Errorf("sim: strategy has an empty quorum pool")
		}
		for _, q := range pool {
			for _, x := range q {
				if x < 0 || x >= n {
					return nil, fmt.Errorf("sim: strategy quorum %v out of range for %d sites", q, n)
				}
			}
		}
	}
	return &StrategyPolicy{
		strat:   st,
		sampler: strategy.NewSampler(st),
		src:     rng.New(seed),
		reads:   make([]int64, n),
		writes:  make([]int64, n),
	}, nil
}

// Reseed rewinds the sampling substream and zeroes the service tallies.
func (sp *StrategyPolicy) Reseed(seed uint64) {
	sp.src.Reseed(seed)
	for i := range sp.reads {
		sp.reads[i] = 0
	}
	for i := range sp.writes {
		sp.writes[i] = 0
	}
	sp.granted = 0
}

// judge samples the access's quorum and resolves it against the current
// network state. Service tallies count only granted accesses — a denied
// access performs probes but serves no work.
func (sp *StrategyPolicy) judge(st *graph.State, site int, read bool) (granted bool, probes int) {
	var q strategy.Quorum
	if read {
		q = sp.sampler.SampleRead(sp.src)
	} else {
		q = sp.sampler.SampleWrite(sp.src)
	}
	granted = true
	for _, x := range q {
		if !st.SameComponent(site, x) {
			granted = false
			break
		}
	}
	if granted {
		sp.granted++
		tally := sp.reads
		if !read {
			tally = sp.writes
		}
		for _, x := range q {
			tally[x]++
		}
	}
	return granted, len(q)
}

// SetStrategyPolicy attaches a strategy policy and read fraction α: every
// access samples a quorum from sp and is granted iff the quorum is fully
// inside the submitter's component. Clears any protocol or family tally;
// like those attachments, it is cleared by Reset and must be re-attached
// per batch. Enables access event generation.
func (s *Simulator) SetStrategyPolicy(sp *StrategyPolicy, alpha float64) {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("sim: α=%g out of [0,1]", alpha))
	}
	if len(sp.reads) != s.st.Graph().N() {
		panic(fmt.Sprintf("sim: strategy policy sized for %d sites, graph has %d",
			len(sp.reads), s.st.Graph().N()))
	}
	s.strat = sp
	s.protocol = nil
	s.tally = nil
	s.alpha = alpha
	s.ensureAccessEvents()
}

// stratAccess handles one access event under the attached strategy policy.
// The read/write draw comes from the simulator's event source — the same
// draw, in the same order, as the protocol and tally paths — so the event
// trajectory is shared; only the quorum draw uses the policy's substream.
func (s *Simulator) stratAccess(site int) {
	read := s.src.Bernoulli(s.alpha)
	granted, probes := s.strat.judge(s.st, site, read)
	s.pendStratProbe += int64(probes)
	switch {
	case granted && read:
		s.counters.ReadsGranted++
		s.pendGrant++
		s.pendStratRead++
	case granted:
		s.counters.WritesGranted++
		s.pendGrant++
		s.pendStratWrite++
	case read:
		s.counters.ReadsDenied++
		s.pendDeny++
		s.pendStratDeny++
	default:
		s.counters.WritesDenied++
		s.pendDeny++
		s.pendStratDeny++
	}
}

// flushStratObs pushes the batched strategy counters into the registry.
func (s *Simulator) flushStratObs() {
	if s.obs != nil {
		if s.pendStratRead != 0 {
			s.obs.Add(obs.CStrategyRead, s.pendStratRead)
		}
		if s.pendStratWrite != 0 {
			s.obs.Add(obs.CStrategyWrite, s.pendStratWrite)
		}
		if s.pendStratDeny != 0 {
			s.obs.Add(obs.CStrategyDeny, s.pendStratDeny)
		}
		if s.pendStratProbe != 0 {
			s.obs.Add(obs.CStrategyProbe, s.pendStratProbe)
		}
	}
	s.pendStratRead, s.pendStratWrite, s.pendStratDeny, s.pendStratProbe = 0, 0, 0, 0
}

// StrategyMeasurement is the outcome of a strategy load measurement: the
// direct empirical counterpart of the LP's predictions.
type StrategyMeasurement struct {
	// Overall is the availability (fraction of accesses granted).
	Overall stats.Interval
	// MaxLoad is the empirical bottleneck load per submitted access: the
	// maximum over sites of (reads served)/(accesses·rcap) +
	// (writes served)/(accesses·wcap). Its reciprocal bounds throughput.
	MaxLoad stats.Interval
	// Capacity is the per-batch reciprocal of MaxLoad.
	Capacity stats.Interval
	// PerSite is the across-batch mean empirical load of every site.
	PerSite []float64
	Batches int
}

// MeasureStrategyLoad measures a strategy's availability and per-site load
// empirically, with the batching methodology of MeasureAvailability: warm
// up, measure fixed-size batches from fresh network states, stop on CI
// convergence. At failure rates near zero the measured loads converge to
// the LP's SiteLoads prediction and the capacity to the LP capacity — the
// agreement the BENCH_strategy gate enforces.
func MeasureStrategyLoad(g *graph.Graph, sys strategy.System, p Params, st strategy.Strategy,
	alpha float64, cfg StudyConfig) (StrategyMeasurement, error) {
	if err := cfg.validate(); err != nil {
		return StrategyMeasurement{}, err
	}
	if g.N() != sys.N() {
		return StrategyMeasurement{}, fmt.Errorf("sim: %d-site graph for %d-site system", g.N(), sys.N())
	}
	if err := sys.Validate(); err != nil {
		return StrategyMeasurement{}, err
	}
	if err := st.Validate(sys); err != nil {
		return StrategyMeasurement{}, err
	}
	sp, err := NewStrategyPolicy(st, g.N(), 0)
	if err != nil {
		return StrategyMeasurement{}, err
	}
	var avail, ml, capc stats.BatchMeans
	perSite := make([]float64, g.N())
	batches := 0
	s := New(g, sys.Votes, p, cfg.Seed)
	if cfg.Obs != nil {
		s.AttachObs(cfg.Obs)
	}
	for b := 0; b < cfg.MaxBatches; b++ {
		if b > 0 {
			s.Reset(cfg.Seed + uint64(b))
		}
		// The sampling substream is keyed off the batch seed in a distinct
		// lane, so batch b's quorum draws are one deterministic function of
		// (strategy, seed, b) — independent of warm-up length or topology.
		sp.Reseed(rng.SubSeed(cfg.Seed+uint64(b), 0x57a7))
		s.SetStrategyPolicy(sp, alpha)
		s.RunAccesses(cfg.Warmup)
		s.ResetCounters()
		sp.Reseed(rng.SubSeed(cfg.Seed+uint64(b), 0x57a8))
		s.RunAccesses(cfg.BatchAccesses)
		c := s.Counters()
		avail.AddBatch(c.Availability())
		n := float64(cfg.BatchAccesses)
		worst := 0.0
		for x := 0; x < g.N(); x++ {
			load := float64(sp.reads[x])/(n*sys.ReadCap[x]) + float64(sp.writes[x])/(n*sys.WriteCap[x])
			perSite[x] += load
			if load > worst {
				worst = load
			}
		}
		ml.AddBatch(worst)
		if worst > 0 {
			capc.AddBatch(1 / worst)
		}
		batches++
		if batches >= cfg.MinBatches && avail.Converged(cfg.CIHalfWidth) && ml.N() >= cfg.MinBatches {
			break
		}
	}
	for x := range perSite {
		perSite[x] /= float64(batches)
	}
	return StrategyMeasurement{
		Overall:  avail.Interval95(),
		MaxLoad:  ml.Interval95(),
		Capacity: capc.Interval95(),
		PerSite:  perSite,
		Batches:  batches,
	}, nil
}
