package sim

import (
	"fmt"
	"runtime"
	"sync"

	"quorumkit/internal/graph"
	"quorumkit/internal/rng"
	"quorumkit/internal/strategy"
	"quorumkit/internal/topo"
)

// GridSpec describes a paper-style multi-configuration study: the full
// chords × α grid over rings of a given size, each cell measured by a
// family sweep. It is the engine behind `quorumsim -study`.
type GridSpec struct {
	// Sites is the ring size; 0 means the paper's 101.
	Sites int
	// Chords lists the chord counts of the topology axis; nil means the
	// subset of the paper's counts {0, 1, 2, 4, 16, 256, 4949} that fit
	// the ring (4949 is specific to 101 sites; for other sizes the axis is
	// clamped to valid counts).
	Chords []int
	// Alphas lists the read-fraction axis; nil means the paper's levels
	// {0, 0.25, 0.5, 0.75, 1}.
	Alphas []float64
	// Workers caps the worker pool; ≤ 0 means GOMAXPROCS. The results are
	// bit-identical for every worker count.
	Workers int
	// Strategy, when non-nil, additionally measures the given randomized
	// quorum strategy in every cell (availability and empirical load at the
	// cell's α), alongside the family sweep. The strategy's system must
	// match the grid's ring size.
	Strategy *StrategySpec
}

// StrategySpec names a randomized strategy to measure across the grid.
type StrategySpec struct {
	Sys   strategy.System
	Strat strategy.Strategy
}

// PaperAlphas are the five read-fraction levels of the paper's figures.
var PaperAlphas = []float64{0, 0.25, 0.5, 0.75, 1}

func (sp GridSpec) sites() int {
	if sp.Sites == 0 {
		return topo.Sites
	}
	return sp.Sites
}

func (sp GridSpec) chords() []int {
	if sp.Chords != nil {
		return sp.Chords
	}
	maxC := topo.MaxChords(sp.sites())
	out := make([]int, 0, len(topo.ChordCounts))
	for _, c := range topo.ChordCounts {
		if c <= maxC {
			out = append(out, c)
		}
	}
	return out
}

func (sp GridSpec) alphas() []float64 {
	if sp.Alphas != nil {
		return sp.Alphas
	}
	return PaperAlphas
}

func (sp GridSpec) validate() error {
	n := sp.sites()
	if n < 5 {
		return fmt.Errorf("sim: grid ring size %d (need ≥ 5)", n)
	}
	for _, c := range sp.chords() {
		if c < 0 || c > topo.MaxChords(n) {
			return fmt.Errorf("sim: %d chords out of [0,%d] for %d sites", c, topo.MaxChords(n), n)
		}
	}
	for _, a := range sp.alphas() {
		if a < 0 || a > 1 {
			return fmt.Errorf("sim: grid α=%g out of [0,1]", a)
		}
	}
	if len(sp.chords()) == 0 || len(sp.alphas()) == 0 {
		return fmt.Errorf("sim: empty grid axes %+v", sp)
	}
	if sp.Strategy != nil {
		if err := sp.Strategy.Sys.Validate(); err != nil {
			return err
		}
		if sp.Strategy.Sys.N() != n {
			return fmt.Errorf("sim: grid strategy system has %d sites, grid has %d",
				sp.Strategy.Sys.N(), n)
		}
		if err := sp.Strategy.Strat.Validate(sp.Strategy.Sys); err != nil {
			return err
		}
	}
	return nil
}

// GridCell is one measured configuration of the study grid: the full
// family sweep of one (chords, α) pair, plus the derived optimum.
type GridCell struct {
	Chords int
	Alpha  float64
	// Seed is the RNG substream seed the cell's sweep used, derived
	// deterministically from the study seed and the cell's grid position.
	Seed uint64
	// Family holds the per-assignment measurements, indexed by q_r−1.
	Family []Measurement
	// BestQR is the read quorum with the highest measured mean
	// availability (smallest q_r on ties, as in the optimizer).
	BestQR int
	// Strategy is the cell's randomized-strategy measurement, set only when
	// GridSpec.Strategy was given.
	Strategy *StrategyMeasurement
}

// best returns the index of the highest overall mean, preferring the
// smaller read quorum on ties — the optimizer's tie-break.
func best(family []Measurement) int {
	bi := 0
	for i := 1; i < len(family); i++ {
		if family[i].Overall.Mean > family[bi].Overall.Mean {
			bi = i
		}
	}
	return bi
}

// RunGrid measures every cell of the grid, fanning cells across a
// deterministic worker pool. Each cell runs an independent family Sweep
// whose StudyConfig seed is the rng.SubSeed substream of cfg.Seed at the
// cell's grid index, so the per-cell Measurement results are bit-identical
// regardless of worker count, scheduling order, or host — sharding is pure
// wall-clock, never semantics. Cells are returned in row-major
// chords-major order. cfg.Obs, when set, observes every cell's trajectory
// (cells run concurrently; the registry is atomic).
func RunGrid(spec GridSpec, p Params, cfg StudyConfig) ([]GridCell, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sites, chords, alphas := spec.sites(), spec.chords(), spec.alphas()

	cells := make([]GridCell, 0, len(chords)*len(alphas))
	for _, c := range chords {
		for _, a := range alphas {
			cells = append(cells, GridCell{
				Chords: c,
				Alpha:  a,
				Seed:   rng.SubSeed(cfg.Seed, uint64(len(cells))),
			})
		}
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// Graphs are shared per chord count: immutable once built, and state
	// is per-simulator.
	graphs := make(map[int]*graph.Graph, len(chords))
	for _, c := range chords {
		if _, ok := graphs[c]; !ok {
			graphs[c] = topo.Build(sites, c)
		}
	}

	next := make(chan int, len(cells))
	for i := range cells {
		next <- i
	}
	close(next)
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				cell := &cells[i]
				cellCfg := cfg
				cellCfg.Seed = cell.Seed
				family, err := Sweep(graphs[cell.Chords], nil, p, cell.Alpha, cellCfg)
				if err != nil {
					errs[i] = err
					continue
				}
				cell.Family = family
				cell.BestQR = best(family) + 1
				if spec.Strategy != nil {
					// Keyed off the cell seed like the sweep, so the
					// measurement is a pure function of the cell's grid
					// position: bit-identical for every worker count.
					m, err := MeasureStrategyLoad(graphs[cell.Chords], spec.Strategy.Sys,
						p, spec.Strategy.Strat, cell.Alpha, cellCfg)
					if err != nil {
						errs[i] = err
						continue
					}
					cell.Strategy = &m
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}
