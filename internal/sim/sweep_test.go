package sim

import (
	"reflect"
	"testing"

	"quorumkit/internal/graph"
	"quorumkit/internal/obs"
	"quorumkit/internal/topo"
)

// TestSweepMatchesPerAssignment is the central equivalence theorem of the
// suffix-sum sweep: for every assignment in the family, the one-simulation
// sweep must reproduce the per-assignment measurement runs bit for bit —
// same Counters-derived means, same CI, same per-assignment batch counts —
// because the trajectory never depends on the assignment and the tallied
// integers are the same.
func TestSweepMatchesPerAssignment(t *testing.T) {
	p := Params{AccessMean: 1, FailMean: 12, RepairMean: 3}
	cfg := StudyConfig{
		Warmup: 400, BatchAccesses: 6_000,
		// A reachable CI target makes different assignments converge at
		// different batch counts, exercising the per-assignment replay.
		MinBatches: 3, MaxBatches: 10, CIHalfWidth: 0.02, Seed: 11,
	}
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		alpha float64
	}{
		{"ring/mixed", graph.Ring(11), 0.6},
		{"chorded/readonly", topo.Build(11, 3), 1},
		{"complete/writeonly", graph.Complete(9), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := Sweep(tc.g, nil, p, tc.alpha, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := SweepReference(tc.g, nil, p, tc.alpha, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(fast) != len(ref) {
				t.Fatalf("family sizes differ: %d vs %d", len(fast), len(ref))
			}
			sawSpread := false
			for i := range fast {
				if !reflect.DeepEqual(fast[i], ref[i]) {
					t.Fatalf("q_r=%d differs:\n fast %+v\n ref  %+v", i+1, fast[i], ref[i])
				}
				if fast[i].Batches != fast[0].Batches {
					sawSpread = true
				}
			}
			if cfg.CIHalfWidth < 1 && !sawSpread && len(fast) > 2 {
				t.Logf("note: every assignment converged at the same batch count")
			}
		})
	}
}

// TestSweepDeterminism: same configuration, same result, bit for bit.
func TestSweepDeterminism(t *testing.T) {
	g := graph.Ring(9)
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 2}
	cfg := StudyConfig{Warmup: 200, BatchAccesses: 3000, MinBatches: 2, MaxBatches: 4, CIHalfWidth: 0.01, Seed: 3}
	a, err := Sweep(g, nil, p, 0.7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(g, nil, p, 0.7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep is not deterministic")
	}
}

// TestSweepObsTopologyFlow: a registry attached to a sweep sees the shared
// trajectory's topology events exactly once per batch, and no access
// grant/deny counts (grant-ness has no single value during a family sweep).
func TestSweepObsTopologyFlow(t *testing.T) {
	g := graph.Ring(9)
	p := Params{AccessMean: 1, FailMean: 6, RepairMean: 2}
	cfg := StudyConfig{Warmup: 100, BatchAccesses: 4000, MinBatches: 2, MaxBatches: 2, CIHalfWidth: 1, Seed: 5}

	bare, err := Sweep(g, nil, p, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	cfg.Obs = reg
	instrumented, err := Sweep(g, nil, p, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatal("observation perturbed the sweep")
	}
	if reg.Counter(obs.CSimSiteFail) == 0 {
		t.Fatal("no topology events observed")
	}
	if g, d := reg.Counter(obs.CSimAccessGrant), reg.Counter(obs.CSimAccessDeny); g != 0 || d != 0 {
		t.Fatalf("family sweep recorded access decisions (%d grants, %d denies)", g, d)
	}
}

// TestSweepValidation mirrors the study validation paths.
func TestSweepValidation(t *testing.T) {
	g := graph.Ring(5)
	if _, err := Sweep(g, nil, PaperParams(), 0.5, StudyConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
