package sim

import (
	"math"
	"testing"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
)

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	h.push(3.0, evAccess, 0)
	h.push(1.0, evSiteFail, 1)
	h.push(2.0, evLinkFail, 2)
	h.push(1.0, evSiteRepair, 3) // same time as seq-earlier push → after it
	var got []float64
	var kinds []eventKind
	for h.len() > 0 {
		e := h.pop()
		got = append(got, e.at)
		kinds = append(kinds, e.kind)
	}
	want := []float64{1, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v", got)
		}
	}
	if kinds[0] != evSiteFail || kinds[1] != evSiteRepair {
		t.Fatalf("tie-break order %v", kinds)
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.AccessMean != 1 || p.FailMean != 128 {
		t.Fatalf("params %+v", p)
	}
	if math.Abs(p.Reliability()-0.96) > 1e-12 {
		t.Fatalf("reliability %g", p.Reliability())
	}
}

func TestParamsValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params should panic")
		}
	}()
	New(graph.Ring(3), nil, Params{AccessMean: 1, FailMean: 0, RepairMean: 1}, 1)
}

func TestCountersArithmetic(t *testing.T) {
	c := Counters{ReadsGranted: 30, ReadsDenied: 10, WritesGranted: 15, WritesDenied: 45}
	if c.Accesses() != 100 {
		t.Fatalf("accesses %d", c.Accesses())
	}
	if math.Abs(c.Availability()-0.45) > 1e-12 {
		t.Fatalf("availability %g", c.Availability())
	}
	if math.Abs(c.ReadAvailability()-0.75) > 1e-12 {
		t.Fatalf("read availability %g", c.ReadAvailability())
	}
	if math.Abs(c.WriteAvailability()-0.25) > 1e-12 {
		t.Fatalf("write availability %g", c.WriteAvailability())
	}
	var zero Counters
	if zero.Availability() != 0 || zero.ReadAvailability() != 0 || zero.WriteAvailability() != 0 {
		t.Fatal("zero counters should report 0")
	}
}

func TestStationaryReliability(t *testing.T) {
	// Time-weighted estimate of P[site down] must match 1 − μ_f/(μ_f+μ_r).
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 10.0 / 9.0} // rel 0.9
	g := graph.Ring(3)
	s := New(g, nil, p, 42)
	est := core.NewEstimator(3, 3)
	s.AttachTimeWeighted(est, nil)
	s.RunUntil(30000)
	f := est.Density(0)
	if math.Abs(f[0]-0.1) > 0.01 {
		t.Fatalf("P[down] = %g, want 0.10", f[0])
	}
}

func TestTimeWeightedMatchesAnalytic(t *testing.T) {
	// K5 with independent exponential alternation: the stationary density
	// of each site's component votes is the Gilbert closed form.
	const rel = 0.9
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel}
	g := graph.Complete(5)
	s := New(g, nil, p, 7)
	est := core.NewEstimator(5, 5)
	s.RunUntil(500) // warm-up
	s.AttachTimeWeighted(est, nil)
	s.RunUntil(50500)
	want := dist.Complete(5, rel, rel)
	got := est.Density(0)
	for v := 0; v <= 5; v++ {
		if math.Abs(got[v]-want[v]) > 0.02 {
			t.Fatalf("f(%d) = %g, analytic %g", v, got[v], want[v])
		}
	}
}

func TestSampledMatchesTimeWeighted(t *testing.T) {
	// PASTA: access-sampled and time-weighted densities agree.
	const rel = 0.9
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel}
	g := graph.Complete(5)

	sw := New(g, nil, p, 11)
	estW := core.NewEstimator(5, 5)
	sw.AttachTimeWeighted(estW, nil)
	sw.RunUntil(30000)

	ss := New(g, nil, p, 13)
	estS := core.NewEstimator(5, 5)
	ss.AttachEstimator(estS)
	ss.RunAccesses(150000)

	fw, fs := estW.Density(2), estS.Density(2)
	for v := 0; v <= 5; v++ {
		if math.Abs(fw[v]-fs[v]) > 0.02 {
			t.Fatalf("f(%d): time-weighted %g vs sampled %g", v, fw[v], fs[v])
		}
	}
}

func TestDirectMeasurementMatchesModel(t *testing.T) {
	// Measured grant rates for a static assignment must match the analytic
	// availability computed from the closed-form density.
	const rel = 0.9
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel}
	g := graph.Complete(5)
	a := quorum.Assignment{QR: 2, QW: 4}
	const alpha = 0.5
	cfg := StudyConfig{
		Warmup: 2000, BatchAccesses: 60000,
		MinBatches: 4, MaxBatches: 8, CIHalfWidth: 0.004, Seed: 3,
	}
	meas, err := MeasureAvailability(g, nil, p, a, alpha, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := dist.Complete(5, rel, rel)
	m, err := core.ModelFromSingleDensity(f)
	if err != nil {
		t.Fatal(err)
	}
	want := alpha*m.ReadAvail(a.QR) + (1-alpha)*m.WriteAvail(a.QW)
	if math.Abs(meas.Overall.Mean-want) > 0.015 {
		t.Fatalf("measured %v, analytic %g", meas.Overall, want)
	}
	if meas.Batches < cfg.MinBatches || meas.Batches > cfg.MaxBatches {
		t.Fatalf("batches %d", meas.Batches)
	}
	// Read and write channels must bracket the overall figure.
	lo := math.Min(meas.Read.Mean, meas.Write.Mean)
	hi := math.Max(meas.Read.Mean, meas.Write.Mean)
	if meas.Overall.Mean < lo-0.02 || meas.Overall.Mean > hi+0.02 {
		t.Fatalf("overall %g outside read %g / write %g", meas.Overall.Mean, meas.Read.Mean, meas.Write.Mean)
	}
}

func TestMeasureValidation(t *testing.T) {
	g := graph.Ring(5)
	p := PaperParams()
	if _, err := MeasureAvailability(g, nil, p, quorum.Assignment{QR: 1, QW: 1}, 0.5, PaperStudy()); err == nil {
		t.Fatal("invalid assignment should error")
	}
	bad := PaperStudy()
	bad.BatchAccesses = 0
	if _, err := MeasureAvailability(g, nil, p, quorum.Assignment{QR: 1, QW: 5}, 0.5, bad); err == nil {
		t.Fatal("invalid config should error")
	}
	bad = PaperStudy()
	bad.MinBatches = 5
	bad.MaxBatches = 2
	if _, err := MeasureAvailability(g, nil, p, quorum.Assignment{QR: 1, QW: 5}, 0.5, bad); err == nil {
		t.Fatal("MaxBatches < MinBatches should error")
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Ring(7)
	p := Params{AccessMean: 1, FailMean: 8, RepairMean: 2}
	run := func() Counters {
		s := New(g, nil, p, 123)
		s.SetProtocol(StaticProtocol{Assignment: quorum.Assignment{QR: 3, QW: 5}}, 0.5)
		s.RunAccesses(20000)
		return s.Counters()
	}
	if run() != run() {
		t.Fatal("same seed must give identical results")
	}
}

func TestCallbacksFire(t *testing.T) {
	g := graph.Ring(5)
	p := Params{AccessMean: 1, FailMean: 5, RepairMean: 1}
	s := New(g, nil, p, 9)
	accesses, changes := 0, 0
	s.OnAccess = func(site, votes int, at float64) {
		if site < 0 || site >= 5 || votes < 0 || votes > 5 {
			t.Fatalf("bad access callback site=%d votes=%d", site, votes)
		}
		accesses++
	}
	s.OnChange = func(at float64) { changes++ }
	s.RunAccesses(1000)
	if accesses != 1000 {
		t.Fatalf("access callbacks %d", accesses)
	}
	if changes == 0 {
		t.Fatal("no topology-change callbacks in 1000 accesses at μ_f=5")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	g := graph.Ring(4)
	s := New(g, nil, Params{AccessMean: 1, FailMean: 100, RepairMean: 1}, 5)
	s.RunUntil(12.5)
	if s.Now() != 12.5 {
		t.Fatalf("now = %g", s.Now())
	}
	if s.AccessCount() != 0 {
		t.Fatal("no access events should exist without a consumer")
	}
	s.RunAccesses(10)
	if s.AccessCount() != 10 {
		t.Fatalf("access count %d", s.AccessCount())
	}
}

func TestSetProtocolValidatesAlpha(t *testing.T) {
	g := graph.Ring(4)
	s := New(g, nil, PaperParams(), 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetProtocol(StaticProtocol{Assignment: quorum.Assignment{QR: 1, QW: 4}}, 1.5)
}

func TestCollectModes(t *testing.T) {
	const rel = 0.9
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel}
	g := graph.Complete(5)
	want := dist.Complete(5, rel, rel)
	mAnalytic, err := core.ModelFromSingleDensity(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []EstimationMode{Sampled, TimeWeighted} {
		m, est, err := Collect(g, nil, p, CollectConfig{
			Mode: mode, Accesses: 120000, Warmup: 2000, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		if est.N() != 5 {
			t.Fatalf("estimator sites %d", est.N())
		}
		for _, alpha := range []float64{0, 0.5, 1} {
			for qr := 1; qr <= 2; qr++ {
				got := m.Availability(alpha, qr)
				ref := mAnalytic.Availability(alpha, qr)
				if math.Abs(got-ref) > 0.03 {
					t.Fatalf("%v: A(%g,%d) = %g, analytic %g", mode, alpha, qr, got, ref)
				}
			}
		}
	}
}

func TestCollectValidation(t *testing.T) {
	g := graph.Ring(4)
	if _, _, err := Collect(g, nil, PaperParams(), CollectConfig{Accesses: 0}); err == nil {
		t.Fatal("zero horizon should error")
	}
	if _, _, err := Collect(g, nil, PaperParams(), CollectConfig{Accesses: 10, Mode: EstimationMode(9)}); err == nil {
		t.Fatal("unknown mode should error")
	}
	if EstimationMode(9).String() == "" || Sampled.String() != "sampled" || TimeWeighted.String() != "time-weighted" {
		t.Fatal("mode names")
	}
}

func TestCollectSurvDominatesACC(t *testing.T) {
	// SURV ≥ ACC at every quorum: the largest component always has at
	// least as many votes as the component of any fixed site.
	const rel = 0.85
	p := Params{AccessMean: 1, FailMean: 10, RepairMean: 10 * (1 - rel) / rel}
	g := graph.Ring(7)
	acc, _, err := Collect(g, nil, p, CollectConfig{Mode: TimeWeighted, Accesses: 100000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	surv, err := CollectSurv(g, nil, p, CollectConfig{Mode: TimeWeighted, Accesses: 100000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for qr := 1; qr <= 3; qr++ {
		if surv.ReadAvail(qr)+1e-9 < acc.ReadAvail(qr)-0.02 {
			t.Fatalf("SURV R(%d)=%g below ACC %g", qr, surv.ReadAvail(qr), acc.ReadAvail(qr))
		}
	}
}

func BenchmarkSimulatorRing101(b *testing.B) {
	g := graph.Ring(101)
	p := PaperParams()
	s := New(g, nil, p, 1)
	s.RunAccesses(1) // force access scheduling before timing
	b.ResetTimer()
	s.RunAccesses(int64(b.N))
}

func BenchmarkSimulatorComplete101(b *testing.B) {
	g := graph.Complete(101)
	p := PaperParams()
	s := New(g, nil, p, 1)
	s.RunAccesses(1)
	b.ResetTimer()
	s.RunAccesses(int64(b.N))
}
