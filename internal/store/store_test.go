package store

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"quorumkit/internal/faults"
)

// --- recording disk: captures every mutating disk operation so the sweep
// can replay any prefix of the physical write history.

type diskOp struct {
	kind byte // 'a' append, 's' sync, 't' truncate, 'r' rename, 'm' remove
	name string
	to   string
	data []byte
	n    int
}

type recDisk struct {
	mem *MemDisk
	ops *[]diskOp
}

func newRecDisk() *recDisk {
	ops := []diskOp{}
	return &recDisk{mem: NewMemDisk(), ops: &ops}
}

func (d *recDisk) Open(name string) File {
	return &recFile{d: d, name: name, f: d.mem.Open(name)}
}

func (d *recDisk) Rename(o, n string) {
	*d.ops = append(*d.ops, diskOp{kind: 'r', name: o, to: n})
	d.mem.Rename(o, n)
}

func (d *recDisk) Remove(name string) {
	*d.ops = append(*d.ops, diskOp{kind: 'm', name: name})
	d.mem.Remove(name)
}

func (d *recDisk) Crash() { d.mem.Crash() }
func (d *recDisk) Wipe()  { d.mem.Wipe() }

type recFile struct {
	d    *recDisk
	name string
	f    File
}

func (f *recFile) Append(p []byte) {
	*f.d.ops = append(*f.d.ops, diskOp{kind: 'a', name: f.name, data: append([]byte(nil), p...)})
	f.f.Append(p)
}

func (f *recFile) Sync() {
	*f.d.ops = append(*f.d.ops, diskOp{kind: 's', name: f.name})
	f.f.Sync()
}

func (f *recFile) Truncate(n int) {
	*f.d.ops = append(*f.d.ops, diskOp{kind: 't', name: f.name, n: n})
	f.f.Truncate(n)
}

func (f *recFile) Contents() []byte { return f.f.Contents() }
func (f *recFile) Len() int         { return f.f.Len() }

// replayOps rebuilds the disk image after the first i physical operations.
func replayOps(ops []diskOp, i int) *MemDisk {
	m := NewMemDisk()
	for _, op := range ops[:i] {
		switch op.kind {
		case 'a':
			m.Open(op.name).Append(op.data)
		case 's':
			m.Open(op.name).Sync()
		case 't':
			m.Open(op.name).Truncate(op.n)
		case 'r':
			m.Rename(op.name, op.to)
		case 'm':
			m.Remove(op.name)
		}
	}
	return m
}

func histEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sweepOracle is the ground truth the crash-point sweep checks recovery
// against: the fold of every logical append prefix, plus per-physical-op
// bounds on which prefixes a recovery may legally land on.
type sweepOracle struct {
	folds []State
	hists [][]float64

	spanEnd       []int // ops length after each API call
	spanCommitted []int // committed fold index after the call (-1 = none)
	spanTotal     []int // appends issued after the call
}

// buildSweepScript drives a NodeStore through bootstrap, appends, syncs and
// a compaction, recording the physical op stream and the logical oracle.
func buildSweepScript() ([]diskOp, *sweepOracle) {
	rd := newRecDisk()
	s := Open(rd, 4) // compact every 4 appends: the sweep crosses compaction
	o := &sweepOracle{}
	committed := -1
	cur := State{Version: 1, QR: 2, QW: 2}
	var hist []float64
	o.folds = append(o.folds, cur)
	o.hists = append(o.hists, nil)

	span := func(f func()) {
		f()
		o.spanEnd = append(o.spanEnd, len(*rd.ops))
		o.spanCommitted = append(o.spanCommitted, committed)
		o.spanTotal = append(o.spanTotal, len(o.folds)-1)
	}

	span(func() { s.Reset(cur, nil); committed = 0 })
	for j := 1; j <= 9; j++ {
		st := State{
			Value:   int64(100 + j),
			Stamp:   int64(j)<<10 | 1,
			Version: int64(1 + j/3),
			QR:      2 + j%2,
			QW:      3 - j%2,
		}
		span(func() {
			s.PutState(st)
			cur.merge(st)
			o.folds = append(o.folds, cur)
			o.hists = append(o.hists, append([]float64(nil), hist...))
		})
		if j%2 == 0 {
			votes := j % 5
			span(func() {
				s.PutObservation(votes)
				for len(hist) <= votes {
					hist = append(hist, 0)
				}
				hist[votes]++
				o.folds = append(o.folds, cur)
				o.hists = append(o.hists, append([]float64(nil), hist...))
			})
		}
		if j%2 == 1 {
			span(func() { s.Sync(); committed = len(o.folds) - 1 })
		}
	}
	span(func() { s.Sync(); committed = len(o.folds) - 1 })
	return *rd.ops, o
}

// bounds returns the legal recovered-fold range for a crash cut after the
// first i physical ops: committed (-1 when bootstrap never completed) is
// the floor, total the ceiling.
func (o *sweepOracle) bounds(i int) (committed, total int) {
	committed, total = -1, 0
	for q := range o.spanEnd {
		if o.spanEnd[q] <= i {
			committed, total = o.spanCommitted[q], o.spanTotal[q]
			continue
		}
		total = o.spanTotal[q] // cut lands inside this call
		break
	}
	return committed, total
}

// checkRecovery recovers from disk m and asserts the recovered state is a
// fold of some legal logical-append prefix: never less than what the last
// completed Sync sealed (no acknowledged write lost), never more than what
// was ever appended.
func checkRecovery(t *testing.T, o *sweepOracle, m *MemDisk, i int, label string) {
	t.Helper()
	s := Open(m, 4)
	st, hist, err := s.Recover()
	committed, total := o.bounds(i)
	if err != nil {
		if errors.Is(err, ErrNoState) && committed == -1 {
			return // crash inside bootstrap: the store never promised anything
		}
		t.Fatalf("%s: recovery failed with committed fold %d: %v", label, committed, err)
	}
	for m := total; m >= 0; m-- {
		if st == o.folds[m] && histEq(hist, o.hists[m]) {
			if m < committed {
				t.Fatalf("%s: recovered fold %d < committed %d (acknowledged write lost)",
					label, m, committed)
			}
			return
		}
	}
	t.Fatalf("%s: recovered state %+v (hist %v) is not a prefix fold", label, st, hist)
}

// TestCrashPointSweep is the tentpole validation: crash after every
// physical disk operation AND after every surviving prefix length of every
// unsynced write (torn write), then recover, asserting the recovered state
// is always a committed prefix of the logical append sequence. ~10⁴
// recoveries, exhaustive over the script's write history.
func TestCrashPointSweep(t *testing.T) {
	ops, o := buildSweepScript()
	recoveries := 0
	for i := 0; i <= len(ops); i++ {
		base := replayOps(ops, i)
		// Plain crash: every unsynced suffix lost.
		{
			m := base.clone()
			m.Crash()
			checkRecovery(t, o, m, i, fmt.Sprintf("cut %d", i))
			recoveries++
		}
		// Torn crash: for each file, each proper prefix of its unsynced
		// suffix survives.
		for _, name := range base.sortedNames() {
			u := base.unsyncedLen(name)
			for k := 1; k <= u; k++ {
				m := base.clone()
				m.tear(name, k)
				m.Crash()
				checkRecovery(t, o, m, i, fmt.Sprintf("cut %d torn %s@%d", i, name, k))
				recoveries++
			}
		}
	}
	if recoveries < 1000 {
		t.Fatalf("sweep only exercised %d crash points", recoveries)
	}
}

// TestBitflipSweep flips every bit of every durable byte of the final disk
// image and recovers. Corruption of sealed state must surface as ErrCorrupt
// — never as a silently wrong or regressed state; flips that land on
// superseded content may recover the full state.
func TestBitflipSweep(t *testing.T) {
	ops, o := buildSweepScript()
	final := replayOps(ops, len(ops))
	full := o.folds[len(o.folds)-1]
	fullHist := o.hists[len(o.hists)-1]
	size := final.durableSize()
	if size == 0 {
		t.Fatal("final image empty")
	}
	for pos := 0; pos < size; pos++ {
		for bit := uint(0); bit < 8; bit++ {
			m := final.clone()
			m.flipBit(pos, bit)
			m.Crash()
			s := Open(m, 4)
			st, hist, err := s.Recover()
			if err != nil {
				continue // detected: the node goes amnesiac, which is safe
			}
			if st != full || !histEq(hist, fullHist) {
				t.Fatalf("flip byte %d bit %d: silent divergence: %+v vs %+v",
					pos, bit, st, full)
			}
		}
	}
}

// TestRoundTrip: puts survive a sync + crash; the estimator history rides
// along.
func TestRoundTrip(t *testing.T) {
	s := Open(NewMemDisk(), 0)
	boot := State{Version: 1, QR: 2, QW: 2}
	s.Reset(boot, nil)
	s.PutState(State{Value: 42, Stamp: 1 << 10, Version: 1, QR: 2, QW: 2})
	s.PutObservation(3)
	s.PutObservation(3)
	s.PutObservation(1)
	s.Sync()
	s.Crash()
	st, hist, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Value != 42 || st.Stamp != 1<<10 {
		t.Fatalf("recovered %+v", st)
	}
	if !histEq(hist, []float64{0, 1, 0, 2}) {
		t.Fatalf("recovered hist %v", hist)
	}
	c := s.Counters()
	if c.Appends != 4 || c.Syncs != 1 || c.TruncateRepairs != 0 || c.CorruptRecoveries != 0 {
		t.Fatalf("counters %+v", c)
	}
}

// TestUnsyncedLostOnCrash: appends after the last Sync are gone; the
// recovered state is exactly the sealed one.
func TestUnsyncedLostOnCrash(t *testing.T) {
	s := Open(NewMemDisk(), 0)
	s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
	s.PutState(State{Value: 1, Stamp: 1 << 10, Version: 1, QR: 2, QW: 2})
	s.Sync()
	s.PutState(State{Value: 2, Stamp: 2 << 10, Version: 1, QR: 2, QW: 2})
	// no sync
	s.Crash()
	st, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Value != 1 || st.Stamp != 1<<10 {
		t.Fatalf("unsynced write survived: %+v", st)
	}
}

// TestDoubleCrashAfterRepair: a torn tail is physically truncated, so the
// store keeps working — and surviving a second crash — after the repair.
func TestDoubleCrashAfterRepair(t *testing.T) {
	mem := NewMemDisk()
	s := Open(mem, 0)
	s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
	s.PutState(State{Value: 1, Stamp: 1 << 10, Version: 1, QR: 2, QW: 2})
	s.Sync()
	s.PutState(State{Value: 2, Stamp: 2 << 10, Version: 1, QR: 2, QW: 2})
	// Tear the unsynced append mid-record, then crash.
	if u := mem.unsyncedLen(logName); u < 2 {
		t.Fatalf("expected unsynced log bytes, got %d", u)
	} else {
		mem.tear(logName, u/2)
	}
	s.Crash()
	st, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Value != 1 {
		t.Fatalf("recovered %+v", st)
	}
	if s.Counters().TruncateRepairs == 0 {
		t.Fatal("torn tail not counted as repair")
	}
	// The repaired store must keep full service.
	s.PutState(State{Value: 3, Stamp: 3 << 10, Version: 1, QR: 2, QW: 2})
	s.Sync()
	s.Crash()
	st, _, err = s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Value != 3 {
		t.Fatalf("post-repair write lost: %+v", st)
	}
}

// TestCorruptSealedDetected: a bit flip inside the sealed log region must
// surface as ErrCorrupt, not as silent repair.
func TestCorruptSealedDetected(t *testing.T) {
	mem := NewMemDisk()
	s := Open(mem, 0)
	s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
	s.PutState(State{Value: 7, Stamp: 1 << 10, Version: 1, QR: 2, QW: 2})
	s.Sync()
	logLen := len(mem.Open(logName).Contents())
	if logLen == 0 {
		t.Fatal("no sealed log bytes")
	}
	// Flip a payload bit of the sealed record.
	f := mem.files[logName]
	f.synced[recHeaderLen+2] ^= 0x10
	s.Crash()
	if _, _, err := s.Recover(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt sealed log recovered with err=%v", err)
	}
	if s.Counters().CorruptRecoveries != 1 {
		t.Fatalf("counters %+v", s.Counters())
	}
}

// TestWipeIsNoState: a wiped medium reports ErrNoState.
func TestWipeIsNoState(t *testing.T) {
	mem := NewMemDisk()
	s := Open(mem, 0)
	s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
	s.PutState(State{Value: 9, Stamp: 1 << 10, Version: 1, QR: 2, QW: 2})
	s.Sync()
	mem.Wipe()
	if _, _, err := s.Recover(); !errors.Is(err, ErrNoState) {
		t.Fatalf("wiped disk recovered with err=%v", err)
	}
}

// TestCompactionReplay: crossing many compactions keeps the log bounded
// and recovery exact.
func TestCompactionReplay(t *testing.T) {
	mem := NewMemDisk()
	s := Open(mem, 8)
	s.Reset(State{Version: 1, QR: 3, QW: 3}, nil)
	var want State
	want = State{Version: 1, QR: 3, QW: 3}
	for j := 1; j <= 100; j++ {
		st := State{Value: int64(j), Stamp: int64(j) << 10, Version: int64(1 + j/10),
			QR: 3, QW: 3}
		s.PutState(st)
		want.merge(st)
		s.PutObservation(j % 6)
		s.Sync()
	}
	if s.Counters().Snapshots < 10 {
		t.Fatalf("only %d compactions over 200 appends", s.Counters().Snapshots)
	}
	if logLen := mem.Open(logName).Len(); logLen > 16*(recHeaderLen+stateLen+recCRCLen) {
		t.Fatalf("log not compacted: %d bytes", logLen)
	}
	s.Crash()
	st, hist, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st != want {
		t.Fatalf("recovered %+v want %+v", st, want)
	}
	total := 0.0
	for _, w := range hist {
		total += w
	}
	if total != 100 {
		t.Fatalf("recovered %v observations, want 100", total)
	}
}

// TestResetDiscardsHistory: Reset after (simulated) rejoin leaves no trace
// of the old identity.
func TestResetDiscardsHistory(t *testing.T) {
	s := Open(NewMemDisk(), 0)
	s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
	s.PutState(State{Value: 5, Stamp: 5 << 10, Version: 2, QR: 3, QW: 3})
	s.Sync()
	adopted := State{Value: 11, Stamp: 9 << 10, Version: 4, QR: 1, QW: 5}
	s.Reset(adopted, []float64{1, 2})
	s.Crash()
	st, hist, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st != adopted || !histEq(hist, []float64{1, 2}) {
		t.Fatalf("recovered %+v %v", st, hist)
	}
}

// TestFoldOrderIndependence: state records replayed in any order land on
// the same fold — the property that makes recovery runtime-agnostic.
func TestFoldOrderIndependence(t *testing.T) {
	recs := []State{
		{Value: 1, Stamp: 1 << 10, Version: 1, QR: 2, QW: 2},
		{Value: 2, Stamp: 5 << 10, Version: 3, QR: 3, QW: 1},
		{Value: 3, Stamp: 3 << 10, Version: 2, QR: 1, QW: 3},
		{Value: 4, Stamp: 4 << 10, Version: 5, QR: 2, QW: 2},
	}
	var want State
	for _, r := range recs {
		want.merge(r)
	}
	src := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		perm := src.Perm(len(recs))
		var got State
		for _, i := range perm {
			got.merge(recs[i])
		}
		if got != want {
			t.Fatalf("order %v folded to %+v, want %+v", perm, got, want)
		}
	}
}

// TestFaultDiskDeterminism: the same plan over the same crash history
// inflicts identical damage — recovered states match byte for byte.
func TestFaultDiskDeterminism(t *testing.T) {
	run := func() (States []State, errs []error) {
		mix, _ := faults.NamedDisk("disk-all")
		plan := faults.NewDiskPlan(11, mix)
		mem := NewMemDisk()
		s := Open(mem, 8)
		s.SetDisk(NewFaultDisk(mem, plan, 3))
		s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
		for j := 1; j <= 30; j++ {
			s.PutState(State{Value: int64(j), Stamp: int64(j) << 10, Version: 1, QR: 2, QW: 2})
			if j%3 != 0 {
				s.Sync()
			}
			if j%5 == 0 {
				s.Crash()
				st, _, err := s.Recover()
				States = append(States, st)
				errs = append(errs, err)
				if err != nil {
					// Amnesia: a rejoin would Reset; simulate that.
					s.Reset(State{Value: 1000 + int64(j), Stamp: int64(j)<<10 | 7,
						Version: 2, QR: 2, QW: 2}, nil)
				}
			}
		}
		return
	}
	s1, e1 := run()
	s2, e2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("recovered states diverged:\n%v\n%v", s1, s2)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("recovery errors diverged at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// TestFaultDiskWipe: a wipe-only plan always loses everything at crash.
func TestFaultDiskWipe(t *testing.T) {
	plan := faults.NewDiskPlan(1, faults.DiskMix{Name: "w", Wipe: 1})
	mem := NewMemDisk()
	s := Open(mem, 0)
	s.SetDisk(NewFaultDisk(mem, plan, 0))
	s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
	s.PutState(State{Value: 1, Stamp: 1 << 10, Version: 1, QR: 2, QW: 2})
	s.Sync()
	s.Crash()
	if _, _, err := s.Recover(); !errors.Is(err, ErrNoState) {
		t.Fatalf("wipe plan recovered with err=%v", err)
	}
}

// TestFaultDiskTornAlwaysRecoverable: torn writes alone never cost sealed
// state — every recovery succeeds with at least the last synced fold.
func TestFaultDiskTornAlwaysRecoverable(t *testing.T) {
	plan := faults.NewDiskPlan(5, faults.DiskMix{Name: "t", Torn: 1})
	mem := NewMemDisk()
	s := Open(mem, 8)
	s.SetDisk(NewFaultDisk(mem, plan, 2))
	s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
	var sealed State
	sealed = State{Version: 1, QR: 2, QW: 2}
	for j := 1; j <= 40; j++ {
		st := State{Value: int64(j), Stamp: int64(j) << 10, Version: 1, QR: 2, QW: 2}
		s.PutState(st)
		if j%2 == 0 {
			s.Sync()
			sealed.merge(st)
		}
		if j%7 == 0 {
			s.Crash()
			got, _, err := s.Recover()
			if err != nil {
				t.Fatalf("crash %d: torn-only plan went amnesiac: %v", j, err)
			}
			if got.Stamp < sealed.Stamp {
				t.Fatalf("crash %d: sealed stamp %d regressed to %d", j, sealed.Stamp, got.Stamp)
			}
			sealed = got // tail survivors may advance the fold; new floor
		}
	}
}

// TestNegativeObservationIgnored guards the uint32 encoding.
func TestNegativeObservationIgnored(t *testing.T) {
	s := Open(NewMemDisk(), 0)
	s.Reset(State{Version: 1, QR: 2, QW: 2}, nil)
	s.PutObservation(-3)
	s.Sync()
	s.Crash()
	_, hist, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 0 {
		t.Fatalf("negative observation persisted: %v", hist)
	}
}
