package store

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// encodeStateRec builds one valid state log record for seeding.
func encodeStateRec(st State) []byte {
	payload := make([]byte, 0, stateLen)
	payload = appendU64(payload, uint64(st.Value))
	payload = appendU64(payload, uint64(st.Stamp))
	payload = appendU64(payload, uint64(st.Version))
	payload = appendU32(payload, uint32(st.QR))
	payload = appendU32(payload, uint32(st.QW))
	rec := append([]byte{recState}, appendU32(nil, uint32(len(payload)))...)
	rec = append(rec, payload...)
	return appendU32(rec, crc32.ChecksumIEEE(rec))
}

func encodeObsRec(votes uint32) []byte {
	rec := append([]byte{recObs}, appendU32(nil, 4)...)
	rec = appendU32(rec, votes)
	return appendU32(rec, crc32.ChecksumIEEE(rec))
}

// FuzzFoldLog drives arbitrary bytes plus an arbitrary sealed boundary
// through the log replayer. Invariants: no panic; lenient replay consumes
// a clean prefix (strict replay of what it consumed must succeed and agree);
// strict replay of a damaged sealed region must error rather than skip.
func FuzzFoldLog(f *testing.F) {
	s1 := encodeStateRec(State{Value: 42, Stamp: 1 << 10, Version: 1, QR: 2, QW: 2})
	s2 := encodeStateRec(State{Value: -7, Stamp: 2<<10 | 3, Version: 9, QR: 4, QW: 1})
	o1 := encodeObsRec(3)
	full := append(append(append([]byte(nil), s1...), o1...), s2...)

	f.Add(full, uint32(len(full)))
	// Truncated: a torn tail mid-record.
	f.Add(full[:len(full)-5], uint32(len(s1)))
	// Bit-flipped: damage inside the sealed region.
	flipped := append([]byte(nil), full...)
	flipped[recHeaderLen+3] ^= 0x40
	f.Add(flipped, uint32(len(full)))
	// Duplicated: the same record twice (legal; the fold is a merge).
	f.Add(append(append([]byte(nil), s1...), s1...), uint32(2*len(s1)))
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{recState}, uint32(1))

	f.Fuzz(func(t *testing.T, data []byte, sealed uint32) {
		s := int(sealed)
		if s > len(data) {
			s = len(data)
		}
		var st State
		var hist []float64
		n, _, err := foldLog(data[:s], &st, &hist, true)
		if err == nil && n != s {
			t.Fatalf("strict fold consumed %d of %d without error", n, s)
		}
		var st2 State
		var hist2 []float64
		consumed, _, lerr := foldLog(data, &st2, &hist2, false)
		if lerr != nil {
			t.Fatalf("lenient fold errored: %v", lerr)
		}
		if consumed > len(data) {
			t.Fatalf("lenient fold consumed %d of %d", consumed, len(data))
		}
		// The lenient-consumed prefix must be strictly clean and land on
		// the same fold.
		var st3 State
		var hist3 []float64
		n3, _, err3 := foldLog(data[:consumed], &st3, &hist3, true)
		if err3 != nil || n3 != consumed {
			t.Fatalf("lenient prefix not strictly clean: n=%d err=%v", n3, err3)
		}
		if st3 != st2 || !histEq(hist3, hist2) {
			t.Fatalf("refold diverged: %+v vs %+v", st3, st2)
		}
	})
}

// FuzzDecodeSnap: the snapshot decoder must never panic, and anything it
// accepts must be a canonical encoding (decode∘encode is the identity).
func FuzzDecodeSnap(f *testing.F) {
	f.Add(encodeSnap(1, State{Version: 1, QR: 2, QW: 2}, nil))
	f.Add(encodeSnap(7, State{Value: 42, Stamp: 1 << 10, Version: 3, QR: 3, QW: 5},
		[]float64{0, 1.5, 2}))
	// Bit-flipped snapshot.
	b := encodeSnap(2, State{Value: 1, Stamp: 1, Version: 1, QR: 1, QW: 1}, []float64{4})
	b[snapHdrLen] ^= 0x01
	f.Add(b)
	// Truncated snapshot.
	f.Add(b[:len(b)-3])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		gen, st, hist, err := decodeSnap(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeSnap(gen, st, hist), data) {
			t.Fatalf("non-canonical snapshot accepted: %v", data)
		}
	})
}
