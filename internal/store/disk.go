// Package store is the durable storage engine under both cluster runtimes:
// a checksummed append-only record log plus an atomically-replaced snapshot
// that together persist each node's protocol-critical state — value, stamp,
// quorum assignment, version number, and estimator history.
//
// The paper's dynamic quorum reassignment protocol (§5) preserves one-copy
// serializability only if a site's copy state survives crashes: a node that
// comes back voting with a stale quorum version silently re-admits the old
// read/write quorums and breaks the intersection argument. The engine
// therefore enforces an "fsync before you externalize" discipline (the
// runtimes sync before every vote reply, ack, and granted return) and a
// recovery path that distinguishes repairable damage (a torn unsynced tail:
// truncate to the last whole record) from unrepairable damage (corruption
// or loss of sealed state: the node must forget it ever voted and rejoin by
// state transfer — see the cluster runtimes' amnesiac mode).
//
// Everything runs against the Disk interface. The in-memory MemDisk backend
// models exactly the durability contract the engine relies on — appended
// bytes are volatile until Sync, renames are atomic and durable — which
// makes crash behaviour deterministic and byte-level exhaustively testable.
// FaultDisk wraps it with seed-planned damage from internal/faults.
package store

import (
	"sort"
	"sync"
)

// Disk is the byte-durability abstraction the store runs on. Appends are
// buffered until Sync; Rename and Remove are atomic, immediately-durable
// metadata operations (a journaled filesystem's guarantee); Crash discards
// every file's unsynced suffix; Wipe loses the medium entirely.
type Disk interface {
	Open(name string) File
	Rename(oldName, newName string)
	Remove(name string)
	Crash()
	Wipe()
}

// File is one append-only file on a Disk. Truncate is a durable metadata
// operation used by recovery to cut a damaged tail.
type File interface {
	Append(p []byte)
	Sync()
	Truncate(n int)
	Contents() []byte
	Len() int
}

// MemDisk is the deterministic in-memory Disk backend. It tracks synced and
// unsynced content separately so Crash has real teeth, and iterates files
// in sorted name order wherever order matters, so injected byte-offset
// faults are reproducible.
type MemDisk struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	d        *MemDisk
	synced   []byte
	unsynced []byte
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk {
	return &MemDisk{files: make(map[string]*memFile)}
}

// Open returns a handle to name, creating an empty file if absent.
func (d *MemDisk) Open(name string) File {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		f = &memFile{d: d}
		d.files[name] = f
	}
	return f
}

// Rename moves oldName over newName, replacing it. No-op if oldName does
// not exist.
func (d *MemDisk) Rename(oldName, newName string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[oldName]
	if !ok {
		return
	}
	delete(d.files, oldName)
	d.files[newName] = f
}

// Remove deletes name if present.
func (d *MemDisk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// Crash discards every file's unsynced suffix: the baseline power-loss
// semantics.
func (d *MemDisk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		f.unsynced = nil
	}
}

// DumpedFile is one file's content split at the durable boundary, as
// returned by Dump.
type DumpedFile struct {
	Synced   []byte
	Unsynced []byte
}

// Dump returns a deep copy of every file, split at the durable boundary.
// It backs byte-level tests: two runs that followed the same protocol
// decisions must leave bit-identical media.
func (d *MemDisk) Dump() map[string]DumpedFile {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]DumpedFile, len(d.files))
	for name, f := range d.files {
		out[name] = DumpedFile{
			Synced:   append([]byte(nil), f.synced...),
			Unsynced: append([]byte(nil), f.unsynced...),
		}
	}
	return out
}

// Wipe loses the medium: every file, synced or not.
func (d *MemDisk) Wipe() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files = make(map[string]*memFile)
}

func (f *memFile) Append(p []byte) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	f.unsynced = append(f.unsynced, p...)
}

func (f *memFile) Sync() {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	f.synced = append(f.synced, f.unsynced...)
	f.unsynced = f.unsynced[:0] // keep capacity: the sync cadence is hot
}

// Truncate cuts the file to its first n bytes (durably, like a journaled
// metadata operation). Synced content is cut only after the unsynced
// suffix is exhausted.
func (f *memFile) Truncate(n int) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n <= len(f.synced) {
		f.synced = f.synced[:n]
		f.unsynced = f.unsynced[:0] // keep capacity
		return
	}
	keep := n - len(f.synced)
	if keep < len(f.unsynced) {
		f.unsynced = f.unsynced[:keep]
	}
}

func (f *memFile) Contents() []byte {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	out := make([]byte, 0, len(f.synced)+len(f.unsynced))
	out = append(out, f.synced...)
	return append(out, f.unsynced...)
}

func (f *memFile) Len() int {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	return len(f.synced) + len(f.unsynced)
}

// sortedNames returns the file names in sorted order — the canonical
// iteration order for fault placement.
func (d *MemDisk) sortedNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// unsyncedLen reports the unsynced suffix length of name (0 if absent).
func (d *MemDisk) unsyncedLen(name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[name]; ok {
		return len(f.unsynced)
	}
	return 0
}

// tear makes the first keep bytes of name's unsynced suffix survive the
// coming crash, modelling a partially-flushed page-cache write.
func (d *MemDisk) tear(name string, keep int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok || keep <= 0 {
		return
	}
	if keep > len(f.unsynced) {
		keep = len(f.unsynced)
	}
	f.synced = append(f.synced, f.unsynced[:keep]...)
	f.unsynced = nil
}

// durableSize is the total synced byte count across all files.
func (d *MemDisk) durableSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, f := range d.files {
		n += len(f.synced)
	}
	return n
}

// flipBit flips one bit of durable content, addressing bytes across files
// in sorted name order.
func (d *MemDisk) flipBit(pos int, bit uint) {
	names := d.sortedNames()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, name := range names {
		f := d.files[name]
		if pos < len(f.synced) {
			f.synced[pos] ^= 1 << (bit % 8)
			return
		}
		pos -= len(f.synced)
	}
}

// clone deep-copies the disk — used by the crash-point sweep to branch the
// same history into many crash outcomes.
func (d *MemDisk) clone() *MemDisk {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := NewMemDisk()
	for name, f := range d.files {
		out.files[name] = &memFile{
			d:        out,
			synced:   append([]byte(nil), f.synced...),
			unsynced: append([]byte(nil), f.unsynced...),
		}
	}
	return out
}
