package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"quorumkit/internal/obs"
)

// The engine keeps three files per node:
//
//   - "log": checksummed append-only records, one per durable mutation.
//     Two record kinds: a full state record (value, stamp, version,
//     assignment) and an estimator observation (one vote-weight sample).
//   - "seal": fixed-size records (generation, sealed log length, crc)
//     appended and synced by every Sync *after* the log itself is flushed.
//     The last valid seal record is the recovery arbiter: it names exactly
//     how many log bytes the node may have externalized. Anomalies inside
//     that committed prefix are corruption (amnesia); anomalies beyond it
//     are at worst a torn tail of un-externalized appends (truncate).
//   - "snap": a whole-state snapshot written to "snap.tmp", synced, then
//     atomically renamed over "snap" (double-buffer + rename discipline).
//     Compaction resets log and seal to a new generation; a seal record
//     whose generation predates the snapshot is superseded and ignored.
//
// Replay is a merge-fold with the same adopt semantics the protocol uses
// in memory (higher version wins the assignment, higher stamp wins the
// value), so replaying any prefix of records — in any arrival order the
// runtimes produced them — lands on a state the node legitimately held.

const (
	logName     = "log"
	sealName    = "seal"
	snapName    = "snap"
	snapTmpName = "snap.tmp"

	recState byte = 1 // full durable state
	recObs   byte = 2 // one estimator observation (vote weight)

	recHeaderLen = 5  // kind (1) + payload length (4)
	recCRCLen    = 4  // trailing crc32 over header+payload
	stateLen     = 32 // value, stamp, version (8 each) + qr, qw (4 each)
	sealRecLen   = 16 // generation (8) + sealed length (4) + crc32 (4)
	snapHdrLen   = 16 // magic (4) + generation (8) + payload length (4)

	// maxRecLen bounds a record's payload; a length field claiming more is
	// damage, not data.
	maxRecLen = 1 << 16

	// defaultSnapEvery is the compaction cadence in log appends.
	defaultSnapEvery = 64
)

var snapMagic = [4]byte{'Q', 'K', 'S', '1'}

// Typed recovery errors.
var (
	// ErrCorrupt: sealed (possibly externalized) durable state is damaged
	// or missing. The node must not vote from it — amnesiac rejoin only.
	ErrCorrupt = errors.New("store: durable state corrupt")
	// ErrNoState: the medium is empty (wiped or never initialized).
	ErrNoState = errors.New("store: no durable state")
)

// State is the protocol-critical durable state of one node.
type State struct {
	Value   int64
	Stamp   int64
	Version int64
	QR, QW  int
}

// merge folds other into s with the protocol's adopt semantics: the higher
// version carries the assignment, the higher stamp carries the value.
// Folding records through merge makes replay order-independent.
func (s *State) merge(o State) {
	if o.Version > s.Version {
		s.Version, s.QR, s.QW = o.Version, o.QR, o.QW
	}
	if o.Stamp > s.Stamp {
		s.Stamp, s.Value = o.Stamp, o.Value
	}
}

// Counters are the store's own metrics, mirrored into obs when a registry
// is attached.
type Counters struct {
	Appends           int64 // log records written
	Syncs             int64 // non-empty sync barriers (log flush + seal)
	Snapshots         int64 // compactions (snapshot + log/seal reset)
	TruncateRepairs   int64 // damaged-tail truncations during recovery
	CorruptRecoveries int64 // recoveries that found sealed state damaged
}

// NodeStore is one node's durable state engine. All methods are safe for
// concurrent use; the cluster runtimes serialize per-node access anyway.
type NodeStore struct {
	mu        sync.Mutex
	disk      Disk
	reg       *obs.Registry
	snapEvery int

	log  File
	seal File

	gen       uint64 // current snapshot generation
	sealedLen int    // log bytes covered by the latest seal record
	dirty     bool   // unsynced log appends outstanding
	appends   int    // log appends since the last compaction

	cur      State // merge-fold mirror of the durable records
	hist     []float64
	counters Counters

	// Reusable scratch buffers for the append hot path (guarded by mu, like
	// everything else). The disk backends copy on Append, so reuse is safe,
	// and the write path stays allocation-free: a log append must cost a
	// small fraction of a protocol operation (see `make bench-store`).
	pbuf []byte // payload assembly
	rbuf []byte // record framing
}

// Open attaches an engine to disk. snapEvery is the compaction cadence in
// appends (≤0 selects the default). Open does not read the disk; call
// Reset to establish a fresh identity or Recover to load an existing one.
func Open(disk Disk, snapEvery int) *NodeStore {
	if snapEvery <= 0 {
		snapEvery = defaultSnapEvery
	}
	s := &NodeStore{disk: disk, snapEvery: snapEvery}
	s.log = disk.Open(logName)
	s.seal = disk.Open(sealName)
	return s
}

// SetObserver attaches (or detaches, with nil) an obs registry.
func (s *NodeStore) SetObserver(r *obs.Registry) {
	s.mu.Lock()
	s.reg = r
	s.mu.Unlock()
}

// SetDisk swaps the underlying disk — used to interpose FaultDisk over the
// same MemDisk after construction. Content is untouched; handles reopen.
func (s *NodeStore) SetDisk(d Disk) {
	s.mu.Lock()
	s.disk = d
	s.log = d.Open(logName)
	s.seal = d.Open(sealName)
	s.mu.Unlock()
}

// Counters returns a copy of the store's metrics.
func (s *NodeStore) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// PutState appends a full state record. Volatile until Sync.
func (s *NodeStore) PutState(st State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.merge(st)
	payload := s.pbuf[:0]
	payload = appendU64(payload, uint64(st.Value))
	payload = appendU64(payload, uint64(st.Stamp))
	payload = appendU64(payload, uint64(st.Version))
	payload = appendU32(payload, uint32(st.QR))
	payload = appendU32(payload, uint32(st.QW))
	s.pbuf = payload
	s.appendRecordLocked(recState, payload)
}

// PutObservation appends one estimator sample (a vote weight). Volatile
// until Sync.
func (s *NodeStore) PutObservation(votes int) {
	if votes < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldObsLocked(votes)
	s.pbuf = appendU32(s.pbuf[:0], uint32(votes))
	s.appendRecordLocked(recObs, s.pbuf)
}

func (s *NodeStore) foldObsLocked(votes int) {
	for len(s.hist) <= votes {
		s.hist = append(s.hist, 0)
	}
	s.hist[votes]++
}

func (s *NodeStore) appendRecordLocked(kind byte, payload []byte) {
	rec := s.rbuf[:0]
	rec = append(rec, kind)
	rec = appendU32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = appendU32(rec, crc32.ChecksumIEEE(rec))
	s.rbuf = rec
	s.log.Append(rec)
	s.dirty = true
	s.appends++
	s.counters.Appends++
	s.reg.Inc(obs.CStoreAppend)
}

// Sync is the durability barrier: flush the log, then seal the flushed
// length. The engine's contract with the runtimes is that nothing derived
// from an append may be externalized (vote reply, ack, granted return)
// before Sync returns. A clean store syncs for free.
func (s *NodeStore) Sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return
	}
	s.log.Sync()
	s.sealedLen = s.log.Len()
	s.rbuf = appendSeal(s.rbuf[:0], s.gen, s.sealedLen)
	s.seal.Append(s.rbuf)
	s.seal.Sync()
	s.dirty = false
	s.counters.Syncs++
	s.reg.Inc(obs.CStoreSync)
	if s.appends >= s.snapEvery {
		s.compactLocked()
	}
}

// compactLocked writes a snapshot of the folded state via the tmp+rename
// discipline and resets log and seal to the next generation. Every step is
// individually durable, so a crash anywhere leaves either the old
// generation fully intact or the new snapshot superseding the old log.
func (s *NodeStore) compactLocked() {
	s.writeSnapLocked(s.gen + 1)
	s.counters.Snapshots++
	s.reg.Inc(obs.CStoreSnapshot)
}

// writeSnapLocked installs a snapshot of (s.cur, s.hist) as generation gen
// and resets log and seal.
func (s *NodeStore) writeSnapLocked(gen uint64) {
	s.disk.Remove(snapTmpName)
	tmp := s.disk.Open(snapTmpName)
	tmp.Append(encodeSnap(gen, s.cur, s.hist))
	tmp.Sync()
	s.disk.Rename(snapTmpName, snapName)
	s.gen = gen
	// Truncate rather than remove-and-reopen: byte-wise identical (an
	// empty file), but the backend keeps its buffers, so the steady-state
	// compaction cycle stops re-growing them from scratch.
	s.log.Truncate(0)
	s.seal.Truncate(0)
	s.seal.Append(encodeSeal(s.gen, 0))
	s.seal.Sync()
	s.appends = 0
	s.sealedLen = 0
	s.dirty = false
}

// Reset establishes a fresh durable identity: bootstrap at cluster
// construction, or the state adopted by an amnesiac rejoin. Prior content
// is discarded.
func (s *NodeStore) Reset(st State, hist []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disk.Remove(snapName)
	s.disk.Remove(snapTmpName)
	s.cur = st
	s.hist = append([]float64(nil), hist...)
	// Log and seal are truncated (not removed) by the snapshot write, so
	// the open handles stay valid.
	s.writeSnapLocked(s.gen + 1)
}

// Crash loses the unsynced suffix of every file (plus whatever damage a
// FaultDisk injects). The in-memory mirror is left stale on purpose: the
// node is down, and Recover rebuilds from bytes alone.
func (s *NodeStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disk.Crash()
}

// Recover reloads durable state after a crash. It returns the folded
// state and estimator history, repairing a damaged un-externalized tail by
// truncation, or fails with ErrCorrupt/ErrNoState when the sealed prefix
// cannot be trusted — in which case the caller must treat the node as
// amnesiac and rejoin by state transfer, never by voting.
func (s *NodeStore) Recover() (State, []float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = s.disk.Open(logName)
	s.seal = s.disk.Open(sealName)
	snapB := s.disk.Open(snapName).Contents()
	sealB := s.seal.Contents()
	logB := s.log.Contents()
	if len(snapB) == 0 && len(sealB) == 0 && len(logB) == 0 {
		return State{}, nil, ErrNoState
	}
	gen, st, hist, err := decodeSnap(snapB)
	if err != nil {
		return State{}, nil, s.corruptLocked(err)
	}
	sealed, genMatch, sealRepairs, err := foldSeal(sealB, gen)
	if err != nil {
		return State{}, nil, s.corruptLocked(err)
	}
	if sealRepairs > 0 {
		s.seal.Truncate(len(sealB) - len(sealB)%sealRecLen)
		s.repairLocked(sealRepairs)
	}
	if !genMatch {
		// Crash window inside compaction: the snapshot superseded the log
		// but the log/seal reset never completed. The old-generation log
		// must not replay on top of the snapshot that already contains it —
		// finish the interrupted compaction instead.
		if len(logB) > 0 {
			s.log.Truncate(0)
			s.repairLocked(1)
		}
		s.seal.Truncate(0)
		s.seal.Append(encodeSeal(gen, 0))
		s.seal.Sync()
		s.gen = gen
		s.sealedLen = 0
		s.dirty = false
		s.appends = 0
		s.cur = st
		s.hist = hist
		return st, append([]float64(nil), hist...), nil
	}
	if sealed > len(logB) {
		return State{}, nil, s.corruptLocked(
			fmt.Errorf("sealed %d bytes, log holds %d", sealed, len(logB)))
	}
	// The committed prefix must parse exactly: any anomaly inside it means
	// externalized state is damaged.
	n, nrec, err := foldLog(logB[:sealed], &st, &hist, true)
	if err != nil || n != sealed {
		return State{}, nil, s.corruptLocked(err)
	}
	// Beyond the seal lies at worst a torn tail of appends whose Sync never
	// returned — nothing out there was externalized, so replay what parses
	// and cut the rest.
	consumed, tailRec, _ := foldLog(logB[sealed:], &st, &hist, false)
	if sealed+consumed < len(logB) {
		s.log.Truncate(sealed + consumed)
		s.repairLocked(1)
	}
	s.gen = gen
	s.sealedLen = sealed
	s.dirty = false
	s.appends = nrec + tailRec
	s.cur = st
	s.hist = hist
	return st, append([]float64(nil), hist...), nil
}

func (s *NodeStore) corruptLocked(cause error) error {
	s.counters.CorruptRecoveries++
	s.reg.Inc(obs.CStoreCorrupt)
	if cause == nil || errors.Is(cause, ErrCorrupt) {
		return ErrCorrupt
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, cause)
}

func (s *NodeStore) repairLocked(n int) {
	s.counters.TruncateRepairs += int64(n)
	s.reg.Add(obs.CStoreTruncRepair, int64(n))
}

// foldLog parses records from b, folding each into st/hist. In strict mode
// any anomaly is an error; in lenient mode parsing stops at the first
// anomaly. Returns the clean byte count and the records folded.
func foldLog(b []byte, st *State, hist *[]float64, strict bool) (int, int, error) {
	off, count := 0, 0
	fail := func(format string, args ...any) (int, int, error) {
		if strict {
			return off, count, fmt.Errorf(format, args...)
		}
		return off, count, nil
	}
	for off < len(b) {
		rest := b[off:]
		if len(rest) < recHeaderLen {
			return fail("short record header at %d", off)
		}
		kind := rest[0]
		plen := int(binary.LittleEndian.Uint32(rest[1:5]))
		total := recHeaderLen + plen + recCRCLen
		if plen > maxRecLen || len(rest) < total {
			return fail("truncated record at %d", off)
		}
		want := binary.LittleEndian.Uint32(rest[recHeaderLen+plen : total])
		if crc32.ChecksumIEEE(rest[:recHeaderLen+plen]) != want {
			return fail("record checksum mismatch at %d", off)
		}
		payload := rest[recHeaderLen : recHeaderLen+plen]
		switch kind {
		case recState:
			if plen != stateLen {
				return fail("state record length %d at %d", plen, off)
			}
			st.merge(decodeState(payload))
		case recObs:
			if plen != 4 {
				return fail("obs record length %d at %d", plen, off)
			}
			votes := int(binary.LittleEndian.Uint32(payload))
			for len(*hist) <= votes {
				*hist = append(*hist, 0)
			}
			(*hist)[votes]++
		default:
			return fail("unknown record kind %d at %d", kind, off)
		}
		off += total
		count++
	}
	return off, count, nil
}

// foldSeal scans the seal file and returns the sealed log length for
// generation gen, and whether any seal record for that generation exists
// (when none does, the snapshot superseded the log: compaction crash
// window). A partial trailing record is a torn seal append whose Sync
// never returned — dropped, counted as a repair. A full-size record with a
// bad checksum is media corruption; it is survivable only when a later
// valid record supersedes it, because only the *latest* seal is
// load-bearing.
func foldSeal(b []byte, gen uint64) (sealed int, genMatch bool, repairs int, err error) {
	n := len(b) / sealRecLen
	lastValid := -1
	var lastGen uint64
	var lastLen int
	badSinceValid := false
	for i := 0; i < n; i++ {
		rec := b[i*sealRecLen : (i+1)*sealRecLen]
		if crc32.ChecksumIEEE(rec[:12]) != binary.LittleEndian.Uint32(rec[12:16]) {
			badSinceValid = true
			repairs++
			continue
		}
		lastValid = i
		lastGen = binary.LittleEndian.Uint64(rec[0:8])
		lastLen = int(binary.LittleEndian.Uint32(rec[8:12]))
		badSinceValid = false
	}
	if badSinceValid {
		return 0, false, 0, errors.New("latest seal record unreadable")
	}
	if len(b)%sealRecLen != 0 {
		repairs++
	}
	if lastValid == -1 || lastGen != gen {
		return 0, false, repairs, nil
	}
	return lastLen, true, repairs, nil
}

func decodeState(p []byte) State {
	return State{
		Value:   int64(binary.LittleEndian.Uint64(p[0:8])),
		Stamp:   int64(binary.LittleEndian.Uint64(p[8:16])),
		Version: int64(binary.LittleEndian.Uint64(p[16:24])),
		QR:      int(binary.LittleEndian.Uint32(p[24:28])),
		QW:      int(binary.LittleEndian.Uint32(p[28:32])),
	}
}

func encodeSeal(gen uint64, sealed int) []byte {
	return appendSeal(make([]byte, 0, sealRecLen), gen, sealed)
}

// appendSeal appends one seal record to b, allocation-free when b has
// capacity (the Sync hot path reuses a scratch buffer).
func appendSeal(b []byte, gen uint64, sealed int) []byte {
	n := len(b)
	b = appendU64(b, gen)
	b = appendU32(b, uint32(sealed))
	return appendU32(b, crc32.ChecksumIEEE(b[n:]))
}

func encodeSnap(gen uint64, st State, hist []float64) []byte {
	payload := make([]byte, 0, stateLen+4+8*len(hist))
	payload = appendU64(payload, uint64(st.Value))
	payload = appendU64(payload, uint64(st.Stamp))
	payload = appendU64(payload, uint64(st.Version))
	payload = appendU32(payload, uint32(st.QR))
	payload = appendU32(payload, uint32(st.QW))
	payload = appendU32(payload, uint32(len(hist)))
	for _, w := range hist {
		payload = appendU64(payload, math.Float64bits(w))
	}
	out := make([]byte, 0, snapHdrLen+len(payload)+recCRCLen)
	out = append(out, snapMagic[:]...)
	out = appendU64(out, gen)
	out = appendU32(out, uint32(len(payload)))
	out = append(out, payload...)
	return appendU32(out, crc32.ChecksumIEEE(out))
}

func decodeSnap(b []byte) (uint64, State, []float64, error) {
	if len(b) < snapHdrLen+recCRCLen {
		return 0, State{}, nil, errors.New("snapshot missing or short")
	}
	if [4]byte(b[0:4]) != snapMagic {
		return 0, State{}, nil, errors.New("snapshot magic mismatch")
	}
	gen := binary.LittleEndian.Uint64(b[4:12])
	plen := int(binary.LittleEndian.Uint32(b[12:16]))
	if plen > maxRecLen || len(b) != snapHdrLen+plen+recCRCLen {
		return 0, State{}, nil, errors.New("snapshot length mismatch")
	}
	want := binary.LittleEndian.Uint32(b[snapHdrLen+plen:])
	if crc32.ChecksumIEEE(b[:snapHdrLen+plen]) != want {
		return 0, State{}, nil, errors.New("snapshot checksum mismatch")
	}
	p := b[snapHdrLen : snapHdrLen+plen]
	if len(p) < stateLen+4 {
		return 0, State{}, nil, errors.New("snapshot payload short")
	}
	st := decodeState(p[:stateLen])
	bins := int(binary.LittleEndian.Uint32(p[stateLen : stateLen+4]))
	if len(p) != stateLen+4+8*bins {
		return 0, State{}, nil, errors.New("snapshot histogram length mismatch")
	}
	var hist []float64
	if bins > 0 {
		hist = make([]float64, bins)
		for i := 0; i < bins; i++ {
			hist[i] = math.Float64frombits(
				binary.LittleEndian.Uint64(p[stateLen+4+8*i:]))
		}
	}
	return gen, st, hist, nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
