package store

import "quorumkit/internal/faults"

// FaultDisk wraps a MemDisk and applies seed-planned damage whenever the
// node crashes. All normal I/O passes straight through; only Crash differs,
// consulting the plan for the damage class of this (node, crash-sequence)
// pair and mapping its selectors onto concrete byte offsets:
//
//   - torn: each file with an unsynced suffix keeps a plan-chosen prefix of
//     it, so a record can be cut at any byte boundary;
//   - corrupt: after the unsynced suffix is dropped, one plan-chosen bit of
//     the surviving durable content flips;
//   - wipe: the medium is lost entirely.
//
// Because the class decision and every offset derive from (seed, node,
// seq), a crash history replays identically on both cluster runtimes.
type FaultDisk struct {
	mem  *MemDisk
	plan *faults.DiskPlan
	node int
	seq  uint64
}

// NewFaultDisk wraps mem with the fault schedule plan gives node.
func NewFaultDisk(mem *MemDisk, plan *faults.DiskPlan, node int) *FaultDisk {
	return &FaultDisk{mem: mem, plan: plan, node: node}
}

// Open delegates to the wrapped disk.
func (d *FaultDisk) Open(name string) File { return d.mem.Open(name) }

// Rename delegates to the wrapped disk.
func (d *FaultDisk) Rename(oldName, newName string) { d.mem.Rename(oldName, newName) }

// Remove delegates to the wrapped disk.
func (d *FaultDisk) Remove(name string) { d.mem.Remove(name) }

// Wipe delegates to the wrapped disk.
func (d *FaultDisk) Wipe() { d.mem.Wipe() }

// Crash applies this crash's planned damage, then the baseline lost-suffix
// semantics.
func (d *FaultDisk) Crash() {
	f := d.plan.CrashFault(d.node, d.seq)
	d.seq++
	if f.Wipe {
		d.mem.Wipe()
		return
	}
	if f.Torn {
		for i, name := range d.mem.sortedNames() {
			if n := d.mem.unsyncedLen(name); n > 0 {
				d.mem.tear(name, f.Pick(uint64(i), n+1))
			}
		}
	}
	d.mem.Crash()
	if f.Corrupt {
		if total := d.mem.durableSize(); total > 0 {
			d.mem.flipBit(f.Pick(0xb17e, total), uint(f.Pick(0xf11b, 8)))
		}
	}
}
