package faults

import (
	"reflect"
	"testing"
)

func TestQRCriticalTargetsHighestVotes(t *testing.T) {
	adv := QRCritical{Every: 10, Duration: 8, Slow: 5, Top: 2}
	v := AdversaryView{
		Step: 20, QR: 3, QW: 4,
		Votes:     []int{1, 3, 2, 1, 3},
		Suspected: make([]bool, 5),
	}
	acts := adv.Advise(v)
	if len(acts) != 1 {
		t.Fatalf("want 1 action, got %d", len(acts))
	}
	a := acts[0]
	if a.Cut {
		t.Fatal("default moves must be slowdowns, not cuts")
	}
	if !reflect.DeepEqual(a.Sites, []int{1, 4}) {
		t.Fatalf("targets %v, want the two highest-vote sites [1 4]", a.Sites)
	}
	if a.Start != 20 || a.End != 28 || a.Slow != 5 {
		t.Fatalf("window/slow wrong: %+v", a)
	}
}

func TestQRCriticalSkipsSuspectedAndOffPeriodSteps(t *testing.T) {
	adv := QRCritical{Every: 10, Duration: 8, Slow: 5, Top: 1}
	v := AdversaryView{
		Step:      20,
		Votes:     []int{1, 3, 2},
		Suspected: []bool{false, true, false},
	}
	acts := adv.Advise(v)
	if len(acts) != 1 || !reflect.DeepEqual(acts[0].Sites, []int{2}) {
		t.Fatalf("suspected top site not skipped: %+v", acts)
	}
	if got := adv.Advise(AdversaryView{Step: 21, Votes: v.Votes, Suspected: v.Suspected}); got != nil {
		t.Fatalf("off-period step must be quiet, got %+v", got)
	}
	allSusp := AdversaryView{Step: 20, Votes: []int{1, 1}, Suspected: []bool{true, true}}
	if got := adv.Advise(allSusp); got != nil {
		t.Fatalf("no unsuspected candidates must mean no action, got %+v", got)
	}
}

func TestQRCriticalCutCadence(t *testing.T) {
	adv := QRCritical{Every: 5, Duration: 4, Slow: 3, Top: 1, CutEvery: 3}
	votes := []int{2, 1}
	susp := make([]bool, 2)
	var cuts, slows int
	for step := int64(0); step < 60; step += 5 {
		acts := adv.Advise(AdversaryView{Step: step, Votes: votes, Suspected: susp})
		if len(acts) != 1 {
			t.Fatalf("step %d: want 1 action", step)
		}
		if acts[0].Cut {
			cuts++
		} else {
			slows++
		}
	}
	if cuts != 4 || slows != 8 {
		t.Fatalf("cadence wrong: %d cuts, %d slows (want 4, 8)", cuts, slows)
	}
}

func TestQRCriticalDefensiveDefaults(t *testing.T) {
	// Zero Every is treated as 1 (every step); zero Top or Duration is a
	// no-op adversary.
	adv := QRCritical{Duration: 2, Slow: 1, Top: 1}
	if acts := adv.Advise(AdversaryView{Step: 7, Votes: []int{1}}); len(acts) != 1 {
		t.Fatalf("Every=0 should plan every step, got %+v", acts)
	}
	if acts := (QRCritical{Every: 1, Slow: 1, Top: 0, Duration: 2}).Advise(AdversaryView{Step: 0, Votes: []int{1}}); acts != nil {
		t.Fatal("Top=0 must be a no-op")
	}
	if acts := (QRCritical{Every: 1, Slow: 1, Top: 1}).Advise(AdversaryView{Step: 0, Votes: []int{1}}); acts != nil {
		t.Fatal("Duration=0 must be a no-op")
	}
	// Top larger than the candidate set clamps.
	acts := (QRCritical{Every: 1, Duration: 1, Slow: 1, Top: 10}).Advise(AdversaryView{Step: 0, Votes: []int{1, 2}})
	if len(acts) != 1 || len(acts[0].Sites) != 2 {
		t.Fatalf("Top clamp failed: %+v", acts)
	}
}

func TestQRCriticalIsPure(t *testing.T) {
	adv := QRCritical{Every: 2, Duration: 3, Slow: 2, Top: 2, CutEvery: 2}
	v := AdversaryView{Step: 4, Votes: []int{3, 1, 2}, Suspected: []bool{false, false, false}}
	a := adv.Advise(v)
	b := adv.Advise(v)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Advise not pure: %+v vs %+v", a, b)
	}
}
