package faults

import "testing"

func TestLatencyNilAndEmpty(t *testing.T) {
	var nilLS *LatencySchedule
	if nilLS.Delay(5, 0, 1) != 0 || nilLS.NumRules() != 0 || nilLS.Horizon() != 0 {
		t.Fatal("nil schedule must delay nothing")
	}
	ls := NewLatencySchedule()
	if ls.Delay(5, 0, 1) != 0 || ls.NumRules() != 0 || ls.Horizon() != 0 {
		t.Fatal("empty schedule must delay nothing")
	}
}

func TestLatencyLinkSlowWindowAndDirection(t *testing.T) {
	ls := NewLatencySchedule().AddLinkSlow(10, 20, []int{0}, []int{1}, 6, 0)
	cases := []struct {
		t        int64
		from, to int
		want     int64
	}{
		{9, 0, 1, 0},  // before the window
		{10, 0, 1, 6}, // window start
		{19, 0, 1, 6}, // last active step
		{20, 0, 1, 0}, // window end is exclusive
		{15, 1, 0, 0}, // reverse direction untouched
		{15, 0, 2, 0}, // other destination untouched
	}
	for _, c := range cases {
		if got := ls.Delay(c.t, c.from, c.to); got != c.want {
			t.Fatalf("Delay(%d, %d, %d) = %d, want %d", c.t, c.from, c.to, got, c.want)
		}
	}
	if ls.Horizon() != 20 || ls.NumRules() != 1 {
		t.Fatalf("horizon=%d rules=%d", ls.Horizon(), ls.NumRules())
	}
}

func TestLatencyRamp(t *testing.T) {
	ls := NewLatencySchedule().AddLinkSlow(0, 100, []int{0}, nil, 10, 10)
	if d := ls.Delay(0, 0, 5); d != 1 {
		t.Fatalf("ramp step 0: %d, want 1", d)
	}
	if d := ls.Delay(4, 0, 5); d != 5 {
		t.Fatalf("ramp step 4: %d, want 5", d)
	}
	if d := ls.Delay(9, 0, 5); d != 10 {
		t.Fatalf("ramp step 9: %d, want 10", d)
	}
	if d := ls.Delay(50, 0, 5); d != 10 {
		t.Fatalf("past the ramp: %d, want peak 10", d)
	}
	// Ramps must be monotone nondecreasing.
	prev := int64(-1)
	for step := int64(0); step < 15; step++ {
		d := ls.Delay(step, 0, 5)
		if d < prev {
			t.Fatalf("ramp not monotone at %d: %d < %d", step, d, prev)
		}
		prev = d
	}
}

func TestLatencySiteSlowBothDirections(t *testing.T) {
	ls := NewLatencySchedule().AddSiteSlow(0, 10, 3, 4, 0)
	if d := ls.Delay(5, 3, 0); d != 4 {
		t.Fatalf("out of slow site: %d, want 4", d)
	}
	if d := ls.Delay(5, 0, 3); d != 4 {
		t.Fatalf("into slow site: %d, want 4", d)
	}
	if d := ls.Delay(5, 0, 1); d != 0 {
		t.Fatalf("unrelated link: %d, want 0", d)
	}
	// A message both from and to slow sites accrues both rules.
	ls.AddSiteSlow(0, 10, 0, 2, 0)
	if d := ls.Delay(5, 0, 3); d != 6 {
		t.Fatalf("compose: %d, want 4+2", d)
	}
}

func TestLatencyFlap(t *testing.T) {
	ls := NewLatencySchedule().AddFlap(100, 200, []int{2}, 5, 4, 2)
	for step := int64(100); step < 120; step++ {
		want := int64(0)
		if (step-100)%4 < 2 {
			want = 5
		}
		if d := ls.Delay(step, 2, 0); d != want {
			t.Fatalf("flap out at %d: %d, want %d", step, d, want)
		}
		if d := ls.Delay(step, 0, 2); d != want {
			t.Fatalf("flap in at %d: %d, want %d", step, d, want)
		}
	}
	if d := ls.Delay(150, 0, 1); d != 0 {
		t.Fatal("flap must not touch unrelated links")
	}
}

func TestLatencyHeavyTail(t *testing.T) {
	ls := NewLatencySchedule().SetHeavyTail(7, 0.2, 3, 50)
	hits, sum := 0, int64(0)
	var maxd int64
	for step := int64(0); step < 4000; step++ {
		d := ls.Delay(step, 0, 1)
		if d < 0 {
			t.Fatalf("negative delay %d", d)
		}
		if d > 0 {
			hits++
			sum += d
			if d > maxd {
				maxd = d
			}
			if d > 50 {
				t.Fatalf("delay %d above cap", d)
			}
		}
		// Purity: the same (t, from, to) always draws the same delay.
		if again := ls.Delay(step, 0, 1); again != d {
			t.Fatalf("heavy tail not pure at %d: %d vs %d", step, d, again)
		}
	}
	rate := float64(hits) / 4000
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("hit rate %.3f far from 0.2", rate)
	}
	if maxd < 10 {
		t.Fatalf("max inflated delay %d: tail not heavy", maxd)
	}
	// Different links draw independent inflation.
	same := 0
	for step := int64(0); step < 400; step++ {
		if ls.Delay(step, 0, 1) == ls.Delay(step, 2, 3) {
			same++
		}
	}
	if same == 400 {
		t.Fatal("links draw identical inflation: hash ignores the link")
	}
}

func TestLatencyPanicsOnMalformedInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty window", func() {
		NewLatencySchedule().AddLinkSlow(10, 10, nil, nil, 3, 0)
	})
	mustPanic("zero slow", func() {
		NewLatencySchedule().AddLinkSlow(0, 10, nil, nil, 0, 0)
	})
	mustPanic("bad duty cycle", func() {
		NewLatencySchedule().AddFlap(0, 10, nil, 3, 4, 4)
	})
	mustPanic("bad tail prob", func() {
		NewLatencySchedule().SetHeavyTail(1, 1.5, 3, 50)
	})
	mustPanic("tail cap below mean", func() {
		NewLatencySchedule().SetHeavyTail(1, 0.1, 10, 5)
	})
}

func TestGrayStormDeterministicAndBounded(t *testing.T) {
	cfg := GrayStormConfig{
		Sites: 9, Start: 0, End: 500,
		MeanDuration: 30, MeanGap: 25,
		SlowMin: 3, SlowMax: 12,
		RampFraction: 0.3, FlapFraction: 0.3,
	}
	a := GrayStorm(11, cfg)
	b := GrayStorm(11, cfg)
	if a.NumRules() == 0 {
		t.Fatal("storm generated no episodes")
	}
	if a.NumRules() != b.NumRules() || a.Horizon() != b.Horizon() {
		t.Fatal("same seed must generate identical storms")
	}
	for step := int64(0); step < 520; step++ {
		for from := 0; from < cfg.Sites; from++ {
			for to := 0; to < cfg.Sites; to++ {
				da, db := a.Delay(step, from, to), b.Delay(step, from, to)
				if da != db {
					t.Fatalf("storms diverge at (%d,%d,%d)", step, from, to)
				}
				if da < 0 {
					t.Fatalf("negative delay at (%d,%d,%d)", step, from, to)
				}
			}
		}
	}
	if a.Horizon() > cfg.End {
		t.Fatalf("horizon %d past End %d", a.Horizon(), cfg.End)
	}
	if c := GrayStorm(12, cfg); c.NumRules() == a.NumRules() && c.Horizon() == a.Horizon() {
		// Rule counts colliding is possible; identical horizons too — but
		// the full delay surface matching would mean the seed is ignored.
		diff := false
		for step := int64(0); step < 500 && !diff; step++ {
			if c.Delay(step, 0, 1) != a.Delay(step, 0, 1) {
				diff = true
			}
		}
		if !diff {
			t.Fatal("different seeds generated identical storms")
		}
	}
}

func TestGrayStormValidate(t *testing.T) {
	good := GrayStormConfig{
		Sites: 3, Start: 0, End: 10,
		MeanDuration: 2, MeanGap: 2, SlowMin: 1, SlowMax: 2,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []GrayStormConfig{
		{Sites: 0, Start: 0, End: 10, MeanDuration: 2, MeanGap: 2, SlowMin: 1, SlowMax: 2},
		{Sites: 3, Start: 10, End: 10, MeanDuration: 2, MeanGap: 2, SlowMin: 1, SlowMax: 2},
		{Sites: 3, Start: 0, End: 10, MeanDuration: 0, MeanGap: 2, SlowMin: 1, SlowMax: 2},
		{Sites: 3, Start: 0, End: 10, MeanDuration: 2, MeanGap: 2, SlowMin: 0, SlowMax: 2},
		{Sites: 3, Start: 0, End: 10, MeanDuration: 2, MeanGap: 2, SlowMin: 3, SlowMax: 2},
		{Sites: 3, Start: 0, End: 10, MeanDuration: 2, MeanGap: 2, SlowMin: 1, SlowMax: 2, RampFraction: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GrayStorm must panic on an invalid config")
		}
	}()
	GrayStorm(1, bad[0])
}
