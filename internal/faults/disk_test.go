package faults

import "testing"

// TestDiskPlanDeterminism: the same (seed, node, seq) must always yield the
// same fault, and the selector-driven Pick must be stable too — this is
// what lets both runtimes agree on storage damage.
func TestDiskPlanDeterminism(t *testing.T) {
	mix, err := NamedDisk("disk-all")
	if err != nil {
		t.Fatal(err)
	}
	a := NewDiskPlan(7, mix)
	b := NewDiskPlan(7, mix)
	for node := 0; node < 5; node++ {
		for seq := uint64(0); seq < 50; seq++ {
			fa, fb := a.CrashFault(node, seq), b.CrashFault(node, seq)
			if fa != fb {
				t.Fatalf("node %d seq %d: %+v vs %+v", node, seq, fa, fb)
			}
			for salt := uint64(0); salt < 4; salt++ {
				if fa.Pick(salt, 97) != fb.Pick(salt, 97) {
					t.Fatalf("node %d seq %d salt %d: Pick diverged", node, seq, salt)
				}
			}
		}
	}
}

// TestDiskPlanClassRates: over many crashes each class should appear at
// roughly its configured rate, classes are mutually exclusive, and a
// different seed gives a different schedule.
func TestDiskPlanClassRates(t *testing.T) {
	mix := DiskMix{Name: "t", Torn: 0.3, Corrupt: 0.2, Wipe: 0.1}
	p := NewDiskPlan(1, mix)
	const n = 20000
	var torn, corrupt, wipe, none int
	for seq := uint64(0); seq < n; seq++ {
		f := p.CrashFault(3, seq)
		set := 0
		if f.Torn {
			torn++
			set++
		}
		if f.Corrupt {
			corrupt++
			set++
		}
		if f.Wipe {
			wipe++
			set++
		}
		if set > 1 {
			t.Fatalf("seq %d: multiple classes set: %+v", seq, f)
		}
		if set == 0 {
			none++
		}
	}
	check := func(name string, got int, want float64) {
		rate := float64(got) / n
		if rate < want-0.03 || rate > want+0.03 {
			t.Fatalf("%s rate %.3f, want ~%.2f", name, rate, want)
		}
	}
	check("torn", torn, 0.3)
	check("corrupt", corrupt, 0.2)
	check("wipe", wipe, 0.1)
	check("none", none, 0.4)

	other := NewDiskPlan(2, mix)
	diff := 0
	for seq := uint64(0); seq < 200; seq++ {
		if p.CrashFault(0, seq) != other.CrashFault(0, seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDiskMixValidate: out-of-range probabilities and over-unity sums are
// rejected; named mixes are valid and resolvable with or without prefix.
func TestDiskMixValidate(t *testing.T) {
	if err := (DiskMix{Torn: -0.1}).Validate(); err == nil {
		t.Fatal("negative Torn accepted")
	}
	if err := (DiskMix{Wipe: 1.5}).Validate(); err == nil {
		t.Fatal("Wipe > 1 accepted")
	}
	if err := (DiskMix{Torn: 0.5, Corrupt: 0.4, Wipe: 0.2}).Validate(); err == nil {
		t.Fatal("over-unity sum accepted")
	}
	for _, name := range DiskNames() {
		m, err := NamedDisk(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("named mix %q invalid: %v", name, err)
		}
	}
	if _, err := NamedDisk("torn"); err != nil {
		t.Fatalf("bare name not accepted: %v", err)
	}
	if _, err := NamedDisk("no-such-mix"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

// TestDiskFaultPickBounds: Pick must stay in [0, n) and cover the range.
func TestDiskFaultPickBounds(t *testing.T) {
	p := NewDiskPlan(9, DiskMix{Name: "t", Torn: 1})
	seen := map[int]bool{}
	for seq := uint64(0); seq < 500; seq++ {
		f := p.CrashFault(1, seq)
		v := f.Pick(seq, 7)
		if v < 0 || v >= 7 {
			t.Fatalf("Pick out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Pick covered %d/7 values", len(seen))
	}
}
