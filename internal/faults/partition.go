package faults

import (
	"fmt"

	"quorumkit/internal/rng"
)

// This file adds the network-partition primitive the per-message fault
// plans lack: correlated, group-structured cuts. A PartitionSchedule is a
// deterministic timetable of cuts — symmetric site-group splits and
// asymmetric one-way blocks — evaluated against the harness's integer step
// clock. Like a Plan, a schedule is a pure function of its construction
// inputs: Blocked(t, from, to) depends only on the timetable, never on
// arrival order or which runtime asks, so the same schedule injects the
// same partition history into the deterministic Cluster and the concurrent
// Async runtime.
//
// Partitions act at the message transport: a blocked (from, to) pair means
// messages sent from `from` to `to` are silently lost while the cut is
// active. One-way cuts model asymmetric link loss ("A hears B, B doesn't
// hear A"); overlapping cuts compose — a message is blocked if *any*
// active cut blocks it.
//
// Partitions introduce no new wire-visible messages: they only suppress
// delivery of the existing protocol messages, so the wire codec and its
// fuzz corpus are unchanged.

// partitionCut is one timed cut. A cut is active on steps t with
// start <= t < end.
type partitionCut struct {
	start, end int64
	oneWay     bool
	group      map[int]int  // split cuts: site -> group index
	from, to   map[int]bool // one-way cuts: blocked direction
}

// PartitionSchedule is an immutable-after-construction timetable of
// network cuts. Build it with AddSplit/AddOneWay (or the Storm generator),
// then hand it to the runtimes; Blocked is read-only and safe for
// concurrent use once construction is done. The nil schedule blocks
// nothing.
type PartitionSchedule struct {
	cuts    []partitionCut
	horizon int64
}

// NewPartitionSchedule returns an empty schedule.
func NewPartitionSchedule() *PartitionSchedule {
	return &PartitionSchedule{}
}

// AddSplit adds a symmetric cut active on [start, end): sites listed in
// different groups cannot exchange messages in either direction while the
// cut is active. Sites not listed in any group are unaffected by this cut.
// It panics on malformed input (schedules are built from trusted test/CLI
// configuration, like fault plans).
func (ps *PartitionSchedule) AddSplit(start, end int64, groups ...[]int) *PartitionSchedule {
	if end <= start {
		panic(fmt.Sprintf("faults: AddSplit with empty window [%d, %d)", start, end))
	}
	if len(groups) < 2 {
		panic("faults: AddSplit needs at least two groups")
	}
	g := make(map[int]int)
	for gi, sites := range groups {
		if len(sites) == 0 {
			panic(fmt.Sprintf("faults: AddSplit group %d is empty", gi))
		}
		for _, s := range sites {
			if prev, dup := g[s]; dup && prev != gi {
				panic(fmt.Sprintf("faults: AddSplit site %d in groups %d and %d", s, prev, gi))
			}
			g[s] = gi
		}
	}
	ps.cuts = append(ps.cuts, partitionCut{start: start, end: end, group: g})
	if end > ps.horizon {
		ps.horizon = end
	}
	return ps
}

// AddOneWay adds an asymmetric cut active on [start, end): messages from
// any site in `from` to any site in `to` are lost; the reverse direction
// is untouched. It panics on malformed input.
func (ps *PartitionSchedule) AddOneWay(start, end int64, from, to []int) *PartitionSchedule {
	if end <= start {
		panic(fmt.Sprintf("faults: AddOneWay with empty window [%d, %d)", start, end))
	}
	if len(from) == 0 || len(to) == 0 {
		panic("faults: AddOneWay needs non-empty from and to sets")
	}
	f := make(map[int]bool, len(from))
	for _, s := range from {
		f[s] = true
	}
	t := make(map[int]bool, len(to))
	for _, s := range to {
		t[s] = true
	}
	ps.cuts = append(ps.cuts, partitionCut{start: start, end: end, oneWay: true, from: f, to: t})
	if end > ps.horizon {
		ps.horizon = end
	}
	return ps
}

// Blocked reports whether a message from site `from` to site `to` is
// suppressed at step t. Nil-safe: a nil schedule blocks nothing.
func (ps *PartitionSchedule) Blocked(t int64, from, to int) bool {
	if ps == nil {
		return false
	}
	for i := range ps.cuts {
		c := &ps.cuts[i]
		if t < c.start || t >= c.end {
			continue
		}
		if c.oneWay {
			if c.from[from] && c.to[to] {
				return true
			}
			continue
		}
		gf, okf := c.group[from]
		gt, okt := c.group[to]
		if okf && okt && gf != gt {
			return true
		}
	}
	return false
}

// ActiveCuts returns how many cuts are active at step t (0 on nil).
func (ps *PartitionSchedule) ActiveCuts(t int64) int {
	if ps == nil {
		return 0
	}
	n := 0
	for i := range ps.cuts {
		if t >= ps.cuts[i].start && t < ps.cuts[i].end {
			n++
		}
	}
	return n
}

// NumCuts returns the total number of cuts in the schedule (0 on nil).
func (ps *PartitionSchedule) NumCuts() int {
	if ps == nil {
		return 0
	}
	return len(ps.cuts)
}

// Horizon returns the end of the last cut: every step at or past the
// horizon is partition-free (0 on nil or empty schedules).
func (ps *PartitionSchedule) Horizon() int64 {
	if ps == nil {
		return 0
	}
	return ps.horizon
}

// StormConfig parameterizes a seeded storm: a sequence of overlapping
// regional cuts with exponential onset gaps and durations.
type StormConfig struct {
	Sites   int     // total sites in the topology
	Regions [][]int // candidate regions; each cut isolates one of them
	Start   int64   // first step a cut may begin
	End     int64   // no cut extends past this step

	MeanDuration   float64 // mean cut length, in steps
	MeanGap        float64 // mean gap between consecutive onsets, in steps
	OneWayFraction float64 // P(a cut is one-way, region -> rest)
}

// Validate rejects nonsensical storm configurations.
func (c StormConfig) Validate() error {
	if c.Sites <= 0 {
		return fmt.Errorf("faults: StormConfig.Sites=%d must be positive", c.Sites)
	}
	if len(c.Regions) == 0 {
		return fmt.Errorf("faults: StormConfig needs at least one region")
	}
	for ri, region := range c.Regions {
		if len(region) == 0 {
			return fmt.Errorf("faults: StormConfig region %d is empty", ri)
		}
		if len(region) >= c.Sites {
			return fmt.Errorf("faults: StormConfig region %d covers all %d sites", ri, c.Sites)
		}
		for _, s := range region {
			if s < 0 || s >= c.Sites {
				return fmt.Errorf("faults: StormConfig region %d has site %d out of [0,%d)", ri, s, c.Sites)
			}
		}
	}
	if c.End <= c.Start {
		return fmt.Errorf("faults: StormConfig window [%d, %d) is empty", c.Start, c.End)
	}
	if c.MeanDuration <= 0 || c.MeanGap <= 0 {
		return fmt.Errorf("faults: StormConfig needs positive MeanDuration and MeanGap")
	}
	if c.OneWayFraction < 0 || c.OneWayFraction > 1 {
		return fmt.Errorf("faults: StormConfig.OneWayFraction=%g out of [0,1]", c.OneWayFraction)
	}
	return nil
}

// Storm generates a deterministic partition storm: overlapping regional
// cuts whose onsets follow a Poisson process with mean gap MeanGap and
// whose durations are exponential with mean MeanDuration. Each cut
// isolates one randomly chosen region from the rest of the topology —
// fully (a symmetric split) or, with probability OneWayFraction, only in
// the region-to-rest direction (the region hears the majority but cannot
// answer). The schedule is a pure function of (seed, cfg). It panics on an
// invalid config.
func Storm(seed uint64, cfg StormConfig) *PartitionSchedule {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed ^ 0x570c4a1) // distinct stream from churn's
	ps := NewPartitionSchedule()
	t := float64(cfg.Start) + src.Exp(cfg.MeanGap)
	for int64(t) < cfg.End {
		start := int64(t)
		region := cfg.Regions[src.Intn(len(cfg.Regions))]
		end := start + 1 + int64(src.Exp(cfg.MeanDuration))
		if end > cfg.End {
			end = cfg.End
		}
		rest := make([]int, 0, cfg.Sites-len(region))
		in := make(map[int]bool, len(region))
		for _, s := range region {
			in[s] = true
		}
		for s := 0; s < cfg.Sites; s++ {
			if !in[s] {
				rest = append(rest, s)
			}
		}
		if src.Bernoulli(cfg.OneWayFraction) {
			ps.AddOneWay(start, end, region, rest)
		} else {
			ps.AddSplit(start, end, region, rest)
		}
		t += src.Exp(cfg.MeanGap)
	}
	return ps
}
