package faults

import (
	"fmt"

	"quorumkit/internal/rng"
)

// Churn drives seeded site/link failure-repair renewal processes over long
// horizons, the fault-arrival side of the soak harness. Every element (site
// or link) alternates independently between an up phase and a down phase
// with exponentially distributed holding times — the classic alternating
// renewal model the paper's availability analysis assumes — discretized
// onto the harness's integer step clock.
//
// The schedule is a pure function of (seed, config): the event sequence is
// drawn once from a dedicated rng substream per element class, so replaying
// the same churn against two runtimes (or with the daemon on and off)
// injects exactly the same topology history.

// ChurnKind identifies one topology event.
type ChurnKind uint8

// Topology event kinds.
const (
	SiteFail ChurnKind = iota
	SiteRepair
	LinkFail
	LinkRepair
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case SiteFail:
		return "site-fail"
	case SiteRepair:
		return "site-repair"
	case LinkFail:
		return "link-fail"
	case LinkRepair:
		return "link-repair"
	default:
		return fmt.Sprintf("ChurnKind(%d)", uint8(k))
	}
}

// ChurnEvent is one scheduled topology change.
type ChurnEvent struct {
	Kind  ChurnKind
	Index int // site or link index
}

// ChurnConfig sets the mean holding times of the renewal processes, in
// harness steps. A zero MTBF disables churn for that element class (MTTR is
// then ignored); a zero MTTR with a positive MTBF is invalid — a failed
// element would never repair within the renewal model.
type ChurnConfig struct {
	SiteMTBF float64 // mean up duration of a site
	SiteMTTR float64 // mean down duration of a site
	LinkMTBF float64 // mean up duration of a link
	LinkMTTR float64 // mean down duration of a link
}

// Validate rejects nonsensical configurations.
func (c ChurnConfig) Validate() error {
	for _, p := range []struct {
		name       string
		mtbf, mttr float64
	}{
		{"Site", c.SiteMTBF, c.SiteMTTR},
		{"Link", c.LinkMTBF, c.LinkMTTR},
	} {
		if p.mtbf < 0 || p.mttr < 0 {
			return fmt.Errorf("faults: %sMTBF/%sMTTR must be non-negative", p.name, p.name)
		}
		if p.mtbf > 0 && p.mttr <= 0 {
			return fmt.Errorf("faults: %sMTBF=%g needs a positive %sMTTR", p.name, p.mtbf, p.name)
		}
	}
	return nil
}

// Churn is a deterministic alternating renewal schedule over the sites and
// links of one topology. It is not safe for concurrent use; the soak
// harness advances it from a single goroutine.
type Churn struct {
	cfg ChurnConfig

	siteDown []bool
	siteNext []float64 // next toggle time; +Inf when churn disabled
	linkDown []bool
	linkNext []float64

	src *rng.Source
}

// never is a sentinel toggle time for disabled element classes.
const never = 1e300

// NewChurn builds the renewal schedule for a topology with the given number
// of sites and links. It panics on an invalid config (churn schedules are
// constructed from trusted test/CLI configuration, like fault plans).
func NewChurn(seed uint64, sites, links int, cfg ChurnConfig) *Churn {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Churn{
		cfg:      cfg,
		siteDown: make([]bool, sites),
		siteNext: make([]float64, sites),
		linkDown: make([]bool, links),
		linkNext: make([]float64, links),
		src:      rng.New(seed ^ 0x5eaf00d),
	}
	for i := range c.siteNext {
		c.siteNext[i] = c.firstToggle(cfg.SiteMTBF)
	}
	for l := range c.linkNext {
		c.linkNext[l] = c.firstToggle(cfg.LinkMTBF)
	}
	return c
}

// firstToggle draws the first failure time of an element, or never when the
// class is disabled.
func (c *Churn) firstToggle(mtbf float64) float64 {
	if mtbf <= 0 {
		return never
	}
	return c.src.Exp(mtbf)
}

// Step returns every event scheduled at or before time t, in deterministic
// (element-index, occurrence) order, advancing each element's renewal
// process past t. Call with strictly increasing t.
func (c *Churn) Step(t float64) []ChurnEvent {
	var out []ChurnEvent
	for i := range c.siteNext {
		for c.siteNext[i] <= t {
			if c.siteDown[i] {
				c.siteDown[i] = false
				out = append(out, ChurnEvent{Kind: SiteRepair, Index: i})
				c.siteNext[i] += c.src.Exp(c.cfg.SiteMTBF)
			} else {
				c.siteDown[i] = true
				out = append(out, ChurnEvent{Kind: SiteFail, Index: i})
				c.siteNext[i] += c.src.Exp(c.cfg.SiteMTTR)
			}
		}
	}
	for l := range c.linkNext {
		for c.linkNext[l] <= t {
			if c.linkDown[l] {
				c.linkDown[l] = false
				out = append(out, ChurnEvent{Kind: LinkRepair, Index: l})
				c.linkNext[l] += c.src.Exp(c.cfg.LinkMTBF)
			} else {
				c.linkDown[l] = true
				out = append(out, ChurnEvent{Kind: LinkFail, Index: l})
				c.linkNext[l] += c.src.Exp(c.cfg.LinkMTTR)
			}
		}
	}
	return out
}

// DownCounts reports how many sites and links the schedule currently holds
// down (for harness diagnostics).
func (c *Churn) DownCounts() (sites, links int) {
	for _, d := range c.siteDown {
		if d {
			sites++
		}
	}
	for _, d := range c.linkDown {
		if d {
			links++
		}
	}
	return sites, links
}
