package faults

import (
	"fmt"

	"quorumkit/internal/rng"
)

// Churn drives seeded site/link failure-repair renewal processes over long
// horizons, the fault-arrival side of the soak harness. Every element (site
// or link) alternates independently between an up phase and a down phase
// with exponentially distributed holding times — the classic alternating
// renewal model the paper's availability analysis assumes — discretized
// onto the harness's integer step clock.
//
// The schedule is a pure function of (seed, config): the event sequence is
// drawn once from a dedicated rng substream per element class, so replaying
// the same churn against two runtimes (or with the daemon on and off)
// injects exactly the same topology history.

// ChurnKind identifies one topology event.
type ChurnKind uint8

// Topology event kinds.
const (
	SiteFail ChurnKind = iota
	SiteRepair
	LinkFail
	LinkRepair
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case SiteFail:
		return "site-fail"
	case SiteRepair:
		return "site-repair"
	case LinkFail:
		return "link-fail"
	case LinkRepair:
		return "link-repair"
	default:
		return fmt.Sprintf("ChurnKind(%d)", uint8(k))
	}
}

// ChurnEvent is one scheduled topology change.
type ChurnEvent struct {
	Kind  ChurnKind
	Index int // site or link index
}

// ChurnConfig sets the mean holding times of the renewal processes, in
// harness steps. A zero MTBF disables churn for that element class (MTTR is
// then ignored); a zero MTTR with a positive MTBF is invalid — a failed
// element would never repair within the renewal model.
type ChurnConfig struct {
	SiteMTBF float64 // mean up duration of a site
	SiteMTTR float64 // mean down duration of a site
	LinkMTBF float64 // mean up duration of a link
	LinkMTTR float64 // mean down duration of a link

	// Correlated regional shocks, Marshall–Olkin style: on top of the
	// independent per-site renewal above, each region in Regions is hit
	// by a shared shock process (its own alternating renewal with
	// ShockMTBF/ShockMTTR) that takes every member site down *together*
	// for the shock's duration. A site is effectively down when its own
	// process or any covering shock holds it down. A zero ShockMTBF
	// disables shocks; the schedule is then bit-identical to one built
	// without these fields.
	Regions   [][]int
	ShockMTBF float64 // mean gap between shocks hitting a region
	ShockMTTR float64 // mean shock duration
}

// Validate rejects nonsensical configurations.
func (c ChurnConfig) Validate() error {
	for _, p := range []struct {
		name       string
		mtbf, mttr float64
	}{
		{"Site", c.SiteMTBF, c.SiteMTTR},
		{"Link", c.LinkMTBF, c.LinkMTTR},
	} {
		if p.mtbf < 0 || p.mttr < 0 {
			return fmt.Errorf("faults: %sMTBF/%sMTTR must be non-negative", p.name, p.name)
		}
		if p.mtbf > 0 && p.mttr <= 0 {
			return fmt.Errorf("faults: %sMTBF=%g needs a positive %sMTTR", p.name, p.mtbf, p.name)
		}
	}
	if c.ShockMTBF < 0 || c.ShockMTTR < 0 {
		return fmt.Errorf("faults: ShockMTBF/ShockMTTR must be non-negative")
	}
	if c.ShockMTBF > 0 {
		if c.ShockMTTR <= 0 {
			return fmt.Errorf("faults: ShockMTBF=%g needs a positive ShockMTTR", c.ShockMTBF)
		}
		if len(c.Regions) == 0 {
			return fmt.Errorf("faults: ShockMTBF=%g needs at least one region", c.ShockMTBF)
		}
	}
	for ri, region := range c.Regions {
		if len(region) == 0 {
			return fmt.Errorf("faults: churn region %d is empty", ri)
		}
	}
	return nil
}

// Churn is a deterministic alternating renewal schedule over the sites and
// links of one topology. It is not safe for concurrent use; the soak
// harness advances it from a single goroutine.
type Churn struct {
	cfg ChurnConfig

	siteDown []bool
	siteNext []float64 // next toggle time; +Inf when churn disabled
	linkDown []bool
	linkNext []float64

	src *rng.Source

	// Shock layer (nil slices when disabled). Shock randomness comes
	// from a separate substream so that enabling shocks never perturbs
	// the base per-element schedules of the same seed.
	shockDown []bool
	shockNext []float64
	shockOf   [][]int // site -> indices of covering regions
	effDown   []bool  // effective per-site state last reported
	shockSrc  *rng.Source
}

// never is a sentinel toggle time for disabled element classes.
const never = 1e300

// NewChurn builds the renewal schedule for a topology with the given number
// of sites and links. It panics on an invalid config (churn schedules are
// constructed from trusted test/CLI configuration, like fault plans).
func NewChurn(seed uint64, sites, links int, cfg ChurnConfig) *Churn {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Churn{
		cfg:      cfg,
		siteDown: make([]bool, sites),
		siteNext: make([]float64, sites),
		linkDown: make([]bool, links),
		linkNext: make([]float64, links),
		src:      rng.New(seed ^ 0x5eaf00d),
	}
	for i := range c.siteNext {
		c.siteNext[i] = c.firstToggle(cfg.SiteMTBF)
	}
	for l := range c.linkNext {
		c.linkNext[l] = c.firstToggle(cfg.LinkMTBF)
	}
	if cfg.ShockMTBF > 0 {
		for ri, region := range cfg.Regions {
			for _, s := range region {
				if s < 0 || s >= sites {
					panic(fmt.Sprintf("faults: churn region %d has site %d out of [0,%d)", ri, s, sites))
				}
			}
		}
		c.shockDown = make([]bool, len(cfg.Regions))
		c.shockNext = make([]float64, len(cfg.Regions))
		c.shockOf = make([][]int, sites)
		c.effDown = make([]bool, sites)
		c.shockSrc = rng.New(seed ^ 0x0c0a5717ed)
		for ri, region := range cfg.Regions {
			c.shockNext[ri] = c.shockSrc.Exp(cfg.ShockMTBF)
			for _, s := range region {
				c.shockOf[s] = append(c.shockOf[s], ri)
			}
		}
	}
	return c
}

// firstToggle draws the first failure time of an element, or never when the
// class is disabled.
func (c *Churn) firstToggle(mtbf float64) float64 {
	if mtbf <= 0 {
		return never
	}
	return c.src.Exp(mtbf)
}

// Step returns every event scheduled at or before time t, in deterministic
// (element-index, occurrence) order, advancing each element's renewal
// process past t. Call with strictly increasing t.
//
// With shocks enabled, site events report changes of the *effective* state
// (own process OR any covering shock): toggles that cancel out within one
// step are coalesced, and a site already held down by a shock emits no
// event when its own process fails underneath.
func (c *Churn) Step(t float64) []ChurnEvent {
	var out []ChurnEvent
	if c.shockNext == nil {
		for i := range c.siteNext {
			for c.siteNext[i] <= t {
				if c.siteDown[i] {
					c.siteDown[i] = false
					out = append(out, ChurnEvent{Kind: SiteRepair, Index: i})
					c.siteNext[i] += c.src.Exp(c.cfg.SiteMTBF)
				} else {
					c.siteDown[i] = true
					out = append(out, ChurnEvent{Kind: SiteFail, Index: i})
					c.siteNext[i] += c.src.Exp(c.cfg.SiteMTTR)
				}
			}
		}
	} else {
		// Advance the base per-site processes silently, then the shared
		// shocks, then diff the effective state in site-index order.
		for i := range c.siteNext {
			for c.siteNext[i] <= t {
				if c.siteDown[i] {
					c.siteDown[i] = false
					c.siteNext[i] += c.src.Exp(c.cfg.SiteMTBF)
				} else {
					c.siteDown[i] = true
					c.siteNext[i] += c.src.Exp(c.cfg.SiteMTTR)
				}
			}
		}
		for r := range c.shockNext {
			for c.shockNext[r] <= t {
				if c.shockDown[r] {
					c.shockDown[r] = false
					c.shockNext[r] += c.shockSrc.Exp(c.cfg.ShockMTBF)
				} else {
					c.shockDown[r] = true
					c.shockNext[r] += c.shockSrc.Exp(c.cfg.ShockMTTR)
				}
			}
		}
		for i := range c.siteDown {
			down := c.siteDown[i]
			for _, r := range c.shockOf[i] {
				if c.shockDown[r] {
					down = true
					break
				}
			}
			if down != c.effDown[i] {
				c.effDown[i] = down
				kind := SiteRepair
				if down {
					kind = SiteFail
				}
				out = append(out, ChurnEvent{Kind: kind, Index: i})
			}
		}
	}
	for l := range c.linkNext {
		for c.linkNext[l] <= t {
			if c.linkDown[l] {
				c.linkDown[l] = false
				out = append(out, ChurnEvent{Kind: LinkRepair, Index: l})
				c.linkNext[l] += c.src.Exp(c.cfg.LinkMTBF)
			} else {
				c.linkDown[l] = true
				out = append(out, ChurnEvent{Kind: LinkFail, Index: l})
				c.linkNext[l] += c.src.Exp(c.cfg.LinkMTTR)
			}
		}
	}
	return out
}

// DownCounts reports how many sites and links the schedule currently holds
// down (for harness diagnostics). With shocks enabled, the site count is
// the effective state the schedule has reported through Step.
func (c *Churn) DownCounts() (sites, links int) {
	siteState := c.siteDown
	if c.effDown != nil {
		siteState = c.effDown
	}
	for _, d := range siteState {
		if d {
			sites++
		}
	}
	for _, d := range c.linkDown {
		if d {
			links++
		}
	}
	return sites, links
}

// ActiveShocks reports how many regional shocks are currently in progress
// (always 0 when shocks are disabled).
func (c *Churn) ActiveShocks() int {
	n := 0
	for _, d := range c.shockDown {
		if d {
			n++
		}
	}
	return n
}
