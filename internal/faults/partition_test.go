package faults

import (
	"reflect"
	"testing"
)

func TestPartitionScheduleNilAndEmpty(t *testing.T) {
	var nilPS *PartitionSchedule
	if nilPS.Blocked(5, 0, 1) {
		t.Fatal("nil schedule blocked a message")
	}
	if nilPS.ActiveCuts(5) != 0 || nilPS.NumCuts() != 0 || nilPS.Horizon() != 0 {
		t.Fatal("nil schedule reported non-zero accounting")
	}
	ps := NewPartitionSchedule()
	if ps.Blocked(5, 0, 1) || ps.Horizon() != 0 {
		t.Fatal("empty schedule blocked a message")
	}
}

func TestPartitionSplitSemantics(t *testing.T) {
	ps := NewPartitionSchedule()
	ps.AddSplit(10, 20, []int{0, 1}, []int{2, 3})
	cases := []struct {
		t        int64
		from, to int
		want     bool
	}{
		{9, 0, 2, false},  // before the window
		{10, 0, 2, true},  // window is inclusive at start
		{19, 2, 0, true},  // symmetric
		{20, 0, 2, false}, // exclusive at end
		{15, 0, 1, false}, // same group
		{15, 2, 3, false}, // same group
		{15, 0, 4, false}, // site 4 unlisted: unaffected
		{15, 4, 2, false},
	}
	for _, c := range cases {
		if got := ps.Blocked(c.t, c.from, c.to); got != c.want {
			t.Errorf("Blocked(%d, %d, %d) = %v, want %v", c.t, c.from, c.to, got, c.want)
		}
	}
	if ps.Horizon() != 20 {
		t.Fatalf("Horizon = %d, want 20", ps.Horizon())
	}
	if ps.ActiveCuts(15) != 1 || ps.ActiveCuts(25) != 0 {
		t.Fatal("ActiveCuts miscounted")
	}
}

func TestPartitionOneWaySemantics(t *testing.T) {
	ps := NewPartitionSchedule()
	ps.AddOneWay(0, 100, []int{1}, []int{0, 2})
	if !ps.Blocked(50, 1, 0) || !ps.Blocked(50, 1, 2) {
		t.Fatal("one-way cut did not block the forward direction")
	}
	if ps.Blocked(50, 0, 1) || ps.Blocked(50, 2, 1) {
		t.Fatal("one-way cut blocked the reverse direction")
	}
	if ps.Blocked(50, 0, 2) {
		t.Fatal("one-way cut blocked an unrelated pair")
	}
}

func TestPartitionOverlappingCutsCompose(t *testing.T) {
	ps := NewPartitionSchedule()
	ps.AddSplit(0, 50, []int{0}, []int{1, 2})
	ps.AddSplit(30, 80, []int{2}, []int{0, 1})
	// During the overlap both cuts are live: 1<->2 is blocked only by the
	// second cut, 0<->1 only by the first.
	if !ps.Blocked(40, 1, 2) || !ps.Blocked(40, 0, 1) {
		t.Fatal("overlap window lost a cut")
	}
	// After the first heals, 0<->1 flows again but 1<->2 stays blocked.
	if ps.Blocked(60, 0, 1) || !ps.Blocked(60, 1, 2) {
		t.Fatal("healing one cut disturbed the other")
	}
	if ps.ActiveCuts(40) != 2 {
		t.Fatalf("ActiveCuts(40) = %d, want 2", ps.ActiveCuts(40))
	}
}

func TestPartitionBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty-window", func() { NewPartitionSchedule().AddSplit(5, 5, []int{0}, []int{1}) }},
		{"one-group", func() { NewPartitionSchedule().AddSplit(0, 1, []int{0}) }},
		{"empty-group", func() { NewPartitionSchedule().AddSplit(0, 1, []int{0}, nil) }},
		{"dup-site", func() { NewPartitionSchedule().AddSplit(0, 1, []int{0, 1}, []int{1}) }},
		{"oneway-window", func() { NewPartitionSchedule().AddOneWay(3, 2, []int{0}, []int{1}) }},
		{"oneway-empty", func() { NewPartitionSchedule().AddOneWay(0, 1, nil, []int{1}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			c.fn()
		})
	}
}

func TestStormDeterministicAndBounded(t *testing.T) {
	cfg := StormConfig{
		Sites:          9,
		Regions:        [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}},
		Start:          0,
		End:            500,
		MeanDuration:   20,
		MeanGap:        15,
		OneWayFraction: 0.3,
	}
	a := Storm(11, cfg)
	b := Storm(11, cfg)
	if a.NumCuts() == 0 {
		t.Fatal("storm generated no cuts")
	}
	if a.NumCuts() != b.NumCuts() {
		t.Fatal("same seed, different cut counts")
	}
	for step := int64(0); step < 600; step++ {
		for from := 0; from < cfg.Sites; from++ {
			for to := 0; to < cfg.Sites; to++ {
				if a.Blocked(step, from, to) != b.Blocked(step, from, to) {
					t.Fatalf("step %d: same-seed storms diverged on (%d,%d)", step, from, to)
				}
			}
		}
	}
	if a.Horizon() > cfg.End {
		t.Fatalf("cut extends past End: horizon %d > %d", a.Horizon(), cfg.End)
	}
	// Past the horizon everything flows.
	for from := 0; from < cfg.Sites; from++ {
		for to := 0; to < cfg.Sites; to++ {
			if a.Blocked(a.Horizon(), from, to) {
				t.Fatal("blocked at horizon")
			}
		}
	}
	// A different seed must differ somewhere.
	c := Storm(12, cfg)
	same := c.NumCuts() == a.NumCuts()
	if same {
		diff := false
		for step := int64(0); step < 500 && !diff; step++ {
			for from := 0; from < cfg.Sites && !diff; from++ {
				for to := 0; to < cfg.Sites && !diff; to++ {
					if a.Blocked(step, from, to) != c.Blocked(step, from, to) {
						diff = true
					}
				}
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("seeds 11 and 12 produced identical storms")
	}
}

func TestStormRegionsIsolateAsUnits(t *testing.T) {
	// Every cut a storm generates isolates exactly one configured region:
	// within-region pairs always flow, and whenever some cross pair is
	// blocked the corresponding whole region boundary behaves as one cut
	// (possibly one-way).
	cfg := StormConfig{
		Sites:          6,
		Regions:        [][]int{{0, 1}, {4, 5}},
		Start:          0,
		End:            300,
		MeanDuration:   25,
		MeanGap:        30,
		OneWayFraction: 0.5,
	}
	ps := Storm(3, cfg)
	for step := int64(0); step < 300; step++ {
		if ps.Blocked(step, 0, 1) || ps.Blocked(step, 1, 0) ||
			ps.Blocked(step, 4, 5) || ps.Blocked(step, 5, 4) {
			t.Fatalf("step %d: within-region pair blocked", step)
		}
	}
}

func TestStormValidate(t *testing.T) {
	good := StormConfig{Sites: 5, Regions: [][]int{{0, 1}}, Start: 0, End: 10,
		MeanDuration: 2, MeanGap: 2, OneWayFraction: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []StormConfig{
		{Regions: [][]int{{0}}, Start: 0, End: 10, MeanDuration: 1, MeanGap: 1},                              // Sites 0
		{Sites: 5, Start: 0, End: 10, MeanDuration: 1, MeanGap: 1},                                           // no regions
		{Sites: 5, Regions: [][]int{{}}, Start: 0, End: 10, MeanDuration: 1, MeanGap: 1},                     // empty region
		{Sites: 2, Regions: [][]int{{0, 1}}, Start: 0, End: 10, MeanDuration: 1, MeanGap: 1},                 // region covers all
		{Sites: 5, Regions: [][]int{{0, 9}}, Start: 0, End: 10, MeanDuration: 1, MeanGap: 1},                 // site out of range
		{Sites: 5, Regions: [][]int{{0}}, Start: 10, End: 10, MeanDuration: 1, MeanGap: 1},                   // empty window
		{Sites: 5, Regions: [][]int{{0}}, Start: 0, End: 10, MeanDuration: 0, MeanGap: 1},                    // bad duration
		{Sites: 5, Regions: [][]int{{0}}, Start: 0, End: 10, MeanDuration: 1, MeanGap: 0},                    // bad gap
		{Sites: 5, Regions: [][]int{{0}}, Start: 0, End: 10, MeanDuration: 1, MeanGap: 1, OneWayFraction: 2}, // bad fraction
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestChurnShockDisabledBitIdentical(t *testing.T) {
	// Adding the (unused) shock fields must not perturb the existing
	// seeded schedules: a config with shocks disabled replays the exact
	// event stream of the pre-shock model.
	base := ChurnConfig{SiteMTBF: 50, SiteMTTR: 10, LinkMTBF: 30, LinkMTTR: 20}
	withFields := base
	withFields.Regions = [][]int{{0, 1, 2}} // declared but inert: ShockMTBF == 0
	a := NewChurn(7, 9, 9, base)
	b := NewChurn(7, 9, 9, withFields)
	for step := 0; step < 3000; step++ {
		ea, eb := a.Step(float64(step)), b.Step(float64(step))
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("step %d: shock-disabled schedule diverged: %v vs %v", step, ea, eb)
		}
	}
}

func TestChurnShockCorrelatedFailures(t *testing.T) {
	// With only shocks active (no per-site churn), every member of a
	// region fails and repairs in the same step, and the event stream
	// stays a legal alternation per site.
	cfg := ChurnConfig{
		Regions:   [][]int{{0, 1, 2}, {3, 4}},
		ShockMTBF: 40,
		ShockMTTR: 15,
	}
	c := NewChurn(5, 6, 0, cfg)
	down := make([]bool, 6)
	sawShock := false
	for step := 0; step < 20000; step++ {
		evs := c.Step(float64(step))
		// Group events by region: the members of one region must move
		// together when only shared shocks drive them.
		changed := map[int]ChurnKind{}
		for _, e := range evs {
			if down[e.Index] == (e.Kind == SiteFail) {
				t.Fatalf("step %d: site %d event %v does not alternate", step, e.Index, e.Kind)
			}
			down[e.Index] = e.Kind == SiteFail
			changed[e.Index] = e.Kind
		}
		for _, region := range cfg.Regions {
			k, any := changed[region[0]]
			for _, s := range region {
				k2, any2 := changed[s]
				if any != any2 || (any && k != k2) {
					t.Fatalf("step %d: region %v did not move as a unit: %v", step, region, evs)
				}
			}
			if any {
				sawShock = true
			}
		}
		if down[5] {
			t.Fatal("site 5 is in no region and must never fail")
		}
		sites, _ := c.DownCounts()
		want := 0
		for _, d := range down {
			if d {
				want++
			}
		}
		if sites != want {
			t.Fatalf("step %d: DownCounts sites = %d, want %d", step, sites, want)
		}
	}
	if !sawShock {
		t.Fatal("no shock ever fired")
	}
}

func TestChurnShockLayersOnBaseChurn(t *testing.T) {
	// With both processes active the effective stream must still be a
	// legal alternation, and shocks must visibly add correlated mass:
	// steps where all members of a region fail together.
	cfg := ChurnConfig{
		SiteMTBF:  200,
		SiteMTTR:  20,
		Regions:   [][]int{{0, 1, 2, 3}},
		ShockMTBF: 120,
		ShockMTTR: 30,
	}
	c := NewChurn(9, 8, 0, cfg)
	down := make([]bool, 8)
	groupFails := 0
	for step := 0; step < 30000; step++ {
		evs := c.Step(float64(step))
		fails := 0
		for _, e := range evs {
			if down[e.Index] == (e.Kind == SiteFail) {
				t.Fatalf("step %d: site %d event %v does not alternate", step, e.Index, e.Kind)
			}
			down[e.Index] = e.Kind == SiteFail
			if e.Kind == SiteFail && e.Index < 4 {
				fails++
			}
		}
		if fails >= 3 {
			groupFails++
		}
		if c.ActiveShocks() > 1 {
			t.Fatal("more active shocks than regions")
		}
	}
	if groupFails == 0 {
		t.Fatal("correlated layer never produced a near-simultaneous regional failure")
	}
}

func TestChurnShockValidate(t *testing.T) {
	bad := []ChurnConfig{
		{ShockMTBF: -1},
		{ShockMTBF: 10},               // no MTTR
		{ShockMTBF: 10, ShockMTTR: 5}, // no regions
		{Regions: [][]int{{}}},        // empty region
		{ShockMTBF: 10, ShockMTTR: 5, Regions: [][]int{nil}}, // empty region
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad shock config %d accepted", i)
		}
	}
	// Out-of-range region sites are caught at construction.
	defer func() {
		if recover() == nil {
			t.Fatal("NewChurn accepted out-of-range region site")
		}
	}()
	NewChurn(1, 3, 0, ChurnConfig{ShockMTBF: 10, ShockMTTR: 5, Regions: [][]int{{0, 7}}})
}
