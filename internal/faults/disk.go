package faults

import (
	"fmt"
	"sort"
)

// Disk faults extend the message-level fault taxonomy down to the storage
// layer. Like message faults, a disk fault schedule is a pure function of
// logical identity — here (node, crash sequence number) — hashed with the
// plan seed, so the deterministic and concurrent runtimes observe the same
// storage damage for the same crash history and every run reproduces from
// its seed.
//
// The fault classes model what real media and filesystems do to an
// append-only log at crash time:
//
//   - lost suffix: everything appended but not fsynced is gone. This is
//     the baseline crash semantics and always applies.
//   - torn write: a *prefix* of the unsynced suffix of a file survives —
//     the page cache flushed part of an append before power was cut. The
//     survivor can end mid-record at any byte offset.
//   - bit corruption: one bit of already-durable content flips (media
//     decay, firmware bugs). Unlike a torn tail this damages state the
//     node may already have externalized, so recovery must refuse to
//     trust the log rather than silently repair it.
//   - wipe: the durable state is lost entirely (disk replacement).
//
// Torn writes are repairable (truncate to the last whole record);
// corruption and wipe force the node into amnesiac rejoin.

// DiskMix is a disk fault mixture: per-crash probabilities of each damage
// class. The classes are checked in order wipe, corrupt, torn; at most one
// applies per crash (beyond the always-on lost-suffix semantics).
type DiskMix struct {
	Name string

	Torn    float64 // P(a prefix of each file's unsynced suffix survives)
	Corrupt float64 // P(one durable bit flips)
	Wipe    float64 // P(all durable state is lost)
}

// Validate rejects nonsensical mixtures.
func (m DiskMix) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Torn", m.Torn}, {"Corrupt", m.Corrupt}, {"Wipe", m.Wipe},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: disk %s=%g out of [0,1]", p.name, p.v)
		}
	}
	if m.Wipe+m.Corrupt+m.Torn > 1 {
		return fmt.Errorf("faults: disk mix %q probabilities sum to %g > 1",
			m.Name, m.Wipe+m.Corrupt+m.Torn)
	}
	return nil
}

// The standard disk mixtures exercised by the disk-chaos harness.
var diskMixes = map[string]DiskMix{
	"disk-none":    {Name: "disk-none"},
	"disk-torn":    {Name: "disk-torn", Torn: 0.6},
	"disk-corrupt": {Name: "disk-corrupt", Corrupt: 0.35},
	"disk-wipe":    {Name: "disk-wipe", Wipe: 0.35},
	"disk-all":     {Name: "disk-all", Torn: 0.35, Corrupt: 0.15, Wipe: 0.10},
}

// NamedDisk returns a predefined disk mixture by name. Bare names without
// the "disk-" prefix are accepted for CLI convenience.
func NamedDisk(name string) (DiskMix, error) {
	if m, ok := diskMixes[name]; ok {
		return m, nil
	}
	if m, ok := diskMixes["disk-"+name]; ok {
		return m, nil
	}
	return DiskMix{}, fmt.Errorf("faults: unknown disk mix %q (have %v)", name, DiskNames())
}

// DiskNames lists the predefined disk mixtures in sorted order.
func DiskNames() []string {
	out := make([]string, 0, len(diskMixes))
	for k := range diskMixes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DiskFault is the damage one crash inflicts on one node's durable state.
// At most one of Wipe/Corrupt/Torn is set. sel seeds the offset choices a
// backend derives via Pick, so the byte-level damage is as reproducible as
// the class decision.
type DiskFault struct {
	Wipe    bool
	Corrupt bool
	Torn    bool

	sel uint64
}

// Pick derives a deterministic choice in [0, n) from the fault's selector
// and a caller salt (file index, offset vs bit, ...). Backends use it to
// map the abstract fault onto concrete byte offsets without re-deriving
// plan hashes. n must be positive.
func (f DiskFault) Pick(salt uint64, n int) int {
	return int(mix64(f.sel+0x9e3779b97f4a7c15+salt) % uint64(n))
}

// DiskPlan is a deterministic disk fault schedule: a seed plus a disk
// mixture. Plans are immutable and safe for concurrent use.
type DiskPlan struct {
	seed uint64
	mix  DiskMix
}

// NewDiskPlan builds a plan. It panics on an invalid mixture (plans are
// constructed from trusted test/CLI configuration).
func NewDiskPlan(seed uint64, mix DiskMix) *DiskPlan {
	if err := mix.Validate(); err != nil {
		panic(err)
	}
	return &DiskPlan{seed: seed, mix: mix}
}

// Seed returns the plan's seed.
func (p *DiskPlan) Seed() uint64 { return p.seed }

// Mix returns the plan's disk fault mixture.
func (p *DiskPlan) Mix() DiskMix { return p.mix }

// CrashFault decides what damage the seq-th crash of node inflicts on its
// durable state. The decision depends only on (seed, node, seq).
func (p *DiskPlan) CrashFault(node int, seq uint64) DiskFault {
	h := mix64(p.seed + 0x9e3779b97f4a7c15 + uint64(node))
	h = mix64(h + 0x9e3779b97f4a7c15 + seq)
	f := DiskFault{sel: mix64(h + 0xd15c)}
	u := unit(h)
	switch {
	case u < p.mix.Wipe:
		f.Wipe = true
	case u < p.mix.Wipe+p.mix.Corrupt:
		f.Corrupt = true
	case u < p.mix.Wipe+p.mix.Corrupt+p.mix.Torn:
		f.Torn = true
	}
	return f
}
