// Package faults provides deterministic, seed-driven fault injection for
// the message-level quorum protocol runtimes in internal/cluster.
//
// The central design decision is that a fault plan is a *pure function* of
// the logical identity of a message — (operation sequence, protocol stage,
// sender, receiver, attempt) — hashed together with the plan seed. Nothing
// depends on arrival order, wall-clock time, or which runtime asks. The
// same plan therefore injects the *same* drops, duplications and delays
// into the deterministic Cluster and the concurrent Async runtime, which
// is what makes cross-runtime fault schedules comparable and every run
// reproducible from its seed.
//
// The injected fault taxonomy (see DESIGN.md, "Fault model and recovery"):
//
//   - drop: the message is lost in transit and never delivered;
//   - duplicate: the message is delivered twice (receivers must dedup);
//   - reorder: the message jumps ahead of earlier queued traffic;
//   - delay: delivery is postponed by a bounded number of slots (or, in
//     the concurrent runtime, a bounded real delay);
//   - coordinator crash: the coordinator of a vote-collection round fails
//     at a chosen point — before quorum, after quorum but before apply, or
//     mid-apply so that only a prefix of the copies is updated.
//
// Assignment-installation messages (StageInstall) are exempt from message
// faults: the QR reassignment protocol's safety argument requires the new
// assignment to reach every responder it was granted against, and making
// reconfiguration itself tolerate partial installation needs a consensus
// round that is out of scope here (the crash points before the install
// decision still apply). This is documented and asserted in the tests.
package faults

import (
	"fmt"
	"sort"
)

// Protocol stages, used to key per-message fault decisions. They mirror the
// message kinds of internal/cluster without importing it.
const (
	StageVoteRequest uint8 = iota + 1
	StageVoteReply
	StageSync
	StageApply
	StageApplyAck
	StageInstall // exempt from message faults (atomic installation)
	StageHistRequest
	StageHistReply
	StageHeartbeat
	StageHeartbeatAck
)

// Mix is a fault mixture: per-message fault probabilities plus the
// per-operation coordinator crash rate.
type Mix struct {
	Name string

	Drop      float64 // P(message lost)
	Duplicate float64 // P(message delivered twice)
	Reorder   float64 // P(message jumps ahead of earlier traffic)
	Delay     float64 // P(message delayed)
	MaxDelay  int     // delay bound in delivery slots (>=1 when Delay>0)

	Crash   float64 // P(coordinator crash per write operation)
	Recover float64 // P(a crashed node recovers, checked once per op)
}

// Validate rejects nonsensical mixtures.
func (m Mix) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Drop", m.Drop}, {"Duplicate", m.Duplicate}, {"Reorder", m.Reorder},
		{"Delay", m.Delay}, {"Crash", m.Crash}, {"Recover", m.Recover},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s=%g out of [0,1]", p.name, p.v)
		}
	}
	if m.Delay > 0 && m.MaxDelay < 1 {
		return fmt.Errorf("faults: Delay=%g needs MaxDelay >= 1", m.Delay)
	}
	return nil
}

// The standard mixtures exercised by the chaos harness.
var mixes = map[string]Mix{
	"none": {Name: "none"},
	"drop": {Name: "drop", Drop: 0.15},
	"dup":  {Name: "dup", Duplicate: 0.30, Drop: 0.02},
	"reorder-delay": {Name: "reorder-delay",
		Reorder: 0.20, Delay: 0.30, MaxDelay: 6, Drop: 0.02},
	"crash": {Name: "crash",
		Drop: 0.05, Crash: 0.10, Recover: 0.40},
}

// Named returns a predefined mixture by name.
func Named(name string) (Mix, error) {
	m, ok := mixes[name]
	if !ok {
		return Mix{}, fmt.Errorf("faults: unknown mix %q (have %v)", name, Names())
	}
	return m, nil
}

// Names lists the predefined mixtures in sorted order.
func Names() []string {
	out := make([]string, 0, len(mixes))
	for k := range mixes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Decision is the fate of one logical message.
type Decision struct {
	Drop      bool
	Duplicate bool
	Reorder   bool
	Delay     int // delivery-slot delay; 0 = none
}

// CrashPoint identifies where inside a vote-collection round the
// coordinator fails.
type CrashPoint uint8

// Crash points. MidApply crashes after the coordinator has applied locally
// and sent the update to only a prefix of the responders.
const (
	NoCrash CrashPoint = iota
	CrashBeforeQuorum
	CrashAfterQuorum
	CrashMidApply
)

// String implements fmt.Stringer.
func (p CrashPoint) String() string {
	switch p {
	case NoCrash:
		return "none"
	case CrashBeforeQuorum:
		return "before-quorum"
	case CrashAfterQuorum:
		return "after-quorum"
	case CrashMidApply:
		return "mid-apply"
	default:
		return fmt.Sprintf("CrashPoint(%d)", uint8(p))
	}
}

// Plan is a deterministic fault schedule: a seed plus a mixture. Plans are
// immutable and safe for concurrent use.
type Plan struct {
	seed uint64
	mix  Mix
}

// NewPlan builds a plan. It panics on an invalid mixture (plans are
// constructed from trusted test/CLI configuration).
func NewPlan(seed uint64, mix Mix) *Plan {
	if err := mix.Validate(); err != nil {
		panic(err)
	}
	return &Plan{seed: seed, mix: mix}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Mix returns the plan's fault mixture.
func (p *Plan) Mix() Mix { return p.mix }

// mix64 is the SplitMix64 finalizer — a strong 64-bit avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash chains the plan seed with the given fields.
func (p *Plan) hash(fields ...uint64) uint64 {
	h := p.seed
	for _, f := range fields {
		h = mix64(h + 0x9e3779b97f4a7c15 + f)
	}
	return h
}

// unit converts 64 hash bits into a uniform float64 in [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Message decides the fate of one logical message. The decision depends
// only on (seed, op, stage, from, to, attempt) — not on when or by whom it
// is asked — so both runtimes see identical fault schedules.
func (p *Plan) Message(op uint64, stage uint8, from, to, attempt int) Decision {
	if stage == StageInstall {
		return Decision{} // assignment installation is modeled atomic
	}
	h := p.hash(op, uint64(stage), uint64(from)<<20|uint64(to), uint64(attempt))
	var d Decision
	if unit(h) < p.mix.Drop {
		d.Drop = true
		return d
	}
	h = mix64(h + 1)
	d.Duplicate = unit(h) < p.mix.Duplicate
	h = mix64(h + 2)
	d.Reorder = unit(h) < p.mix.Reorder
	h = mix64(h + 3)
	if unit(h) < p.mix.Delay {
		h = mix64(h + 4)
		d.Delay = 1 + int(h%uint64(p.mix.MaxDelay))
	}
	return d
}

// Crash decides whether the coordinator of write operation op (attempt
// attempt) crashes, at which point, and — for CrashMidApply — a raw prefix
// selector the caller reduces modulo the responder count.
func (p *Plan) Crash(op uint64, attempt int) (CrashPoint, int) {
	if p.mix.Crash == 0 {
		return NoCrash, 0
	}
	h := p.hash(^op, uint64(attempt), 0xc7a54)
	if unit(h) >= p.mix.Crash {
		return NoCrash, 0
	}
	h = mix64(h + 1)
	point := CrashPoint(1 + h%3)
	h = mix64(h + 2)
	return point, int(h % 1024)
}

// RecoverNow decides whether a crashed node recovers before operation op.
func (p *Plan) RecoverNow(op uint64, nodeID int) bool {
	if p.mix.Recover == 0 {
		return false
	}
	return unit(p.hash(op, uint64(nodeID), 0x4ec0)) < p.mix.Recover
}

// Jitter returns a deterministic uniform jitter value in [0,1) for backoff
// computation, keyed by operation and attempt.
func (p *Plan) Jitter(op uint64, attempt int) float64 {
	return unit(p.hash(op, uint64(attempt), 0x1177e4))
}
