package faults

import "sort"

// Adaptive adversaries: fault generators whose next move is a
// deterministic function of the system's *current* configuration — the
// installed quorum assignment and the detector's suspicion set — rather
// than a pre-compiled timetable. This is the worst-case shape for a
// self-healing daemon: a fixed storm eventually misses the quorum, but an
// adversary that re-reads the assignment after every reassignment keeps
// degrading exactly the sites the read quorum depends on.
//
// Determinism is preserved by construction: Advise is a pure function of
// the view, and the harness applies the returned actions by appending to
// its (single-goroutine) partition and latency schedules at step
// boundaries, so a replay with the same runtime decisions produces the
// same fault history. Adaptive runs are therefore reproducible but — by
// design — not identical across daemon-on and daemon-off replays: the
// adversary reacts to what the daemon does.

// AdversaryView is the system state an adaptive adversary conditions on.
type AdversaryView struct {
	Step      int64
	QR, QW    int    // the currently installed assignment
	Votes     []int  // per-site votes
	Suspected []bool // per-site: suspected by at least one detector view
}

// GrayAction is one move: a slowdown of (or a one-way cut around) a set of
// target sites over [Start, End).
type GrayAction struct {
	Cut   bool  // true: one-way cut targets→rest; false: slowdown of the targets
	Sites []int // target sites
	Start int64
	End   int64
	Slow  int64 // added delivery slots per direction (slowdowns only)
}

// AdaptiveAdversary plans the next actions from the current view. Advise
// must be a pure function of the view (no hidden clock or randomness that
// the view does not determine), so runs replay deterministically.
type AdaptiveAdversary interface {
	Advise(v AdversaryView) []GrayAction
}

// QRCritical is the canonical adaptive adversary: every Every steps it
// degrades the q_r-critical sites — the Top highest-vote sites the
// detector does not already suspect, i.e. exactly the healthy capacity the
// installed read quorum leans on. Most moves are gray (slowdowns a
// miss-count detector misreads as deaths); every CutEvery-th move is a
// real one-way cut, so the daemon can never write the adversary off as
// noise. A reassignment that shifts votes or quorums shifts the next
// target set with it.
type QRCritical struct {
	Every    int64 // planning period in steps (>= 1)
	Duration int64 // action length in steps
	Slow     int64 // slowdown slots per direction
	Top      int   // how many critical sites to degrade per move
	CutEvery int64 // every k-th move is a one-way cut (0 = never cut)
}

// Advise implements AdaptiveAdversary.
func (q QRCritical) Advise(v AdversaryView) []GrayAction {
	every := q.Every
	if every < 1 {
		every = 1
	}
	if v.Step%every != 0 || q.Top < 1 || q.Duration < 1 {
		return nil
	}
	// Rank candidate sites by votes (descending, id ascending) among the
	// unsuspected — the sites whose votes the installed q_r actually
	// counts on right now.
	order := make([]int, 0, len(v.Votes))
	for s := range v.Votes {
		if len(v.Suspected) > s && v.Suspected[s] {
			continue
		}
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if v.Votes[a] != v.Votes[b] {
			return v.Votes[a] > v.Votes[b]
		}
		return a < b
	})
	top := q.Top
	if top > len(order) {
		top = len(order)
	}
	if top == 0 {
		return nil
	}
	targets := append([]int(nil), order[:top]...)
	move := v.Step / every
	act := GrayAction{
		Sites: targets,
		Start: v.Step,
		End:   v.Step + q.Duration,
		Slow:  q.Slow,
	}
	if q.CutEvery > 0 && move%q.CutEvery == q.CutEvery-1 {
		act.Cut = true
	}
	return []GrayAction{act}
}
