package faults

import (
	"strings"
	"testing"
)

func TestPlanDeterministic(t *testing.T) {
	mix, err := Named("reorder-delay")
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewPlan(77, mix)
	p2 := NewPlan(77, mix)
	for op := uint64(0); op < 200; op++ {
		for stage := StageVoteRequest; stage <= StageHistReply; stage++ {
			d1 := p1.Message(op, stage, 0, 3, 1)
			d2 := p2.Message(op, stage, 0, 3, 1)
			if d1 != d2 {
				t.Fatalf("op=%d stage=%d: %+v vs %+v", op, stage, d1, d2)
			}
		}
		if p1.Jitter(op, 2) != p2.Jitter(op, 2) {
			t.Fatalf("jitter diverged at op %d", op)
		}
		c1, k1 := p1.Crash(op, 0)
		c2, k2 := p2.Crash(op, 0)
		if c1 != c2 || k1 != k2 {
			t.Fatalf("crash decision diverged at op %d", op)
		}
		if p1.RecoverNow(op, 4) != p2.RecoverNow(op, 4) {
			t.Fatalf("recovery decision diverged at op %d", op)
		}
	}
}

func TestPlanKeysAreIndependent(t *testing.T) {
	p := NewPlan(9, Mix{Name: "t", Drop: 0.5})
	base := p.Message(10, StageVoteReply, 1, 2, 0)
	differs := 0
	for _, other := range []Decision{
		p.Message(11, StageVoteReply, 1, 2, 0), // op
		p.Message(10, StageApply, 1, 2, 0),     // stage
		p.Message(10, StageVoteReply, 2, 1, 0), // direction
		p.Message(10, StageVoteReply, 1, 2, 1), // attempt
	} {
		if other != base {
			differs++
		}
	}
	if differs == 0 {
		t.Fatal("changing every key component never changed the decision — keys are not being hashed")
	}
}

func TestInstallStageExempt(t *testing.T) {
	p := NewPlan(1, Mix{Name: "t", Drop: 1, Duplicate: 1, Reorder: 1, Delay: 1, MaxDelay: 4})
	for op := uint64(0); op < 50; op++ {
		if d := p.Message(op, StageInstall, 0, 1, 0); d != (Decision{}) {
			t.Fatalf("install message faulted: %+v", d)
		}
		// Sanity: the same plan faults every other stage.
		if d := p.Message(op, StageApply, 0, 1, 0); !d.Drop {
			t.Fatalf("Drop=1 plan did not drop an apply message")
		}
	}
}

func TestPlanApproximateRates(t *testing.T) {
	const trials = 20000
	p := NewPlan(3, Mix{Name: "t", Drop: 0.2, Duplicate: 0.3, Delay: 0.25, MaxDelay: 5})
	var drops, dups, delays int
	for op := uint64(0); op < trials; op++ {
		d := p.Message(op, StageVoteRequest, 0, 1, 0)
		if d.Drop {
			drops++
			continue // duplicate/delay are not decided for dropped messages
		}
		if d.Duplicate {
			dups++
		}
		if d.Delay > 0 {
			delays++
			if d.Delay > 5 {
				t.Fatalf("delay %d exceeds MaxDelay", d.Delay)
			}
		}
	}
	check := func(name string, got int, of int, want float64) {
		rate := float64(got) / float64(of)
		if rate < want-0.02 || rate > want+0.02 {
			t.Errorf("%s rate %.3f, want ~%.2f", name, rate, want)
		}
	}
	check("drop", drops, trials, 0.2)
	check("duplicate", dups, trials-drops, 0.3)
	check("delay", delays, trials-drops, 0.25)
}

func TestMixValidate(t *testing.T) {
	if err := (Mix{Drop: 1.5}).Validate(); err == nil {
		t.Error("Drop=1.5 accepted")
	}
	if err := (Mix{Crash: -0.1}).Validate(); err == nil {
		t.Error("Crash=-0.1 accepted")
	}
	if err := (Mix{Delay: 0.5}).Validate(); err == nil {
		t.Error("Delay without MaxDelay accepted")
	}
	if err := (Mix{Delay: 0.5, MaxDelay: 3, Duplicate: 0.2}).Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
}

func TestNamedMixes(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 predefined mixes, got %v", names)
	}
	for _, name := range names {
		m, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name != name {
			t.Errorf("mix %q carries Name %q", name, m.Name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("predefined mix %q invalid: %v", name, err)
		}
	}
	if _, err := Named("no-such-mix"); err == nil || !strings.Contains(err.Error(), "unknown mix") {
		t.Errorf("unknown mix error = %v", err)
	}
}

func TestCrashPointString(t *testing.T) {
	for p, want := range map[CrashPoint]string{
		NoCrash: "none", CrashBeforeQuorum: "before-quorum",
		CrashAfterQuorum: "after-quorum", CrashMidApply: "mid-apply",
		CrashPoint(9): "CrashPoint(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestCrashRespectsRate(t *testing.T) {
	p := NewPlan(5, Mix{Name: "t", Crash: 0.1})
	crashes := 0
	for op := uint64(0); op < 10000; op++ {
		point, _ := p.Crash(op, 0)
		if point != NoCrash {
			crashes++
			if point < CrashBeforeQuorum || point > CrashMidApply {
				t.Fatalf("invalid crash point %v", point)
			}
		}
	}
	if rate := float64(crashes) / 10000; rate < 0.08 || rate > 0.12 {
		t.Errorf("crash rate %.3f, want ~0.10", rate)
	}
	// A zero-crash plan never crashes.
	none := NewPlan(5, Mix{Name: "t"})
	for op := uint64(0); op < 1000; op++ {
		if point, _ := none.Crash(op, 0); point != NoCrash {
			t.Fatal("Crash=0 plan crashed")
		}
	}
}
