package faults

import (
	"fmt"
	"math"

	"quorumkit/internal/rng"
)

// Gray failures: links and nodes that slow down without ever dropping a
// message. A LatencySchedule is the delay analogue of a PartitionSchedule —
// a deterministic timetable, keyed by the same external partition clock,
// that answers "how many extra delivery slots does a message from `from`
// to `to` suffer at step t?". Like every fault primitive here it is a pure
// function of its construction inputs: Delay(t, from, to) depends only on
// the timetable (and, for the heavy-tail term, a seed hashed with the
// inputs), never on arrival order or which runtime asks, so both runtimes
// replay the identical latency history.
//
// Three degradation shapes compose additively:
//
//   - slowdown windows (AddLinkSlow / AddSiteSlow): a flat added delay over
//     [start, end), optionally ramping linearly from zero over the first
//     `ramp` steps — the "disk filling up" / "GC death spiral" shape;
//   - flapping (AddFlap): a slowdown that is only active during the first
//     `on` steps of every `period`-step cycle — the intermittently
//     overloaded box;
//   - heavy-tail inflation (SetHeavyTail): with small probability per
//     (step, link), an additional Pareto-tailed delay — the stray packet
//     that hits a deep queue.
//
// Latency schedules introduce no new wire-visible messages and never drop
// anything: they only stretch the delivery of existing protocol traffic,
// so the wire codec and its fuzz corpus are unchanged (as with partitions).
//
// Construction is not synchronized: build (or append to) a schedule only
// from the single harness goroutine that also advances the clock, as the
// adaptive adversaries do at step boundaries.

// latencyRule is one timed slowdown.
type latencyRule struct {
	start, end int64
	ramp       int64 // linear ramp-in length in steps (0 = step function)
	slow       int64 // peak added delivery slots
	period, on int64 // flapping duty cycle (period 0 = always on)
	from, to   map[int]bool // nil set = matches every site
}

// matches reports whether the rule covers the (from, to) direction.
func (r *latencyRule) matches(from, to int) bool {
	if r.from != nil && !r.from[from] {
		return false
	}
	if r.to != nil && !r.to[to] {
		return false
	}
	return true
}

// LatencySchedule is a timetable of gray (delay-only) degradation. The nil
// schedule delays nothing.
type LatencySchedule struct {
	rules   []latencyRule
	horizon int64

	htSeed uint64
	htProb float64
	htMean int64
	htCap  int64
}

// NewLatencySchedule returns an empty schedule.
func NewLatencySchedule() *LatencySchedule {
	return &LatencySchedule{}
}

// siteSet builds a membership set; an empty slice means "all sites" (nil).
func siteSet(sites []int) map[int]bool {
	if len(sites) == 0 {
		return nil
	}
	m := make(map[int]bool, len(sites))
	for _, s := range sites {
		m[s] = true
	}
	return m
}

// addRule validates the common window fields and appends.
func (ls *LatencySchedule) addRule(r latencyRule) {
	if r.end <= r.start {
		panic(fmt.Sprintf("faults: latency rule with empty window [%d, %d)", r.start, r.end))
	}
	if r.slow < 1 {
		panic("faults: latency rule needs a positive slowdown")
	}
	ls.rules = append(ls.rules, r)
	if r.end > ls.horizon {
		ls.horizon = r.end
	}
}

// AddLinkSlow adds a directional slowdown active on [start, end): messages
// from any site in `from` to any site in `to` (empty slice = every site)
// suffer `slow` extra delivery slots, ramping linearly from zero over the
// first `ramp` steps when ramp > 0. Panics on malformed input (schedules
// are built from trusted test/CLI configuration, like fault plans).
func (ls *LatencySchedule) AddLinkSlow(start, end int64, from, to []int, slow, ramp int64) *LatencySchedule {
	ls.addRule(latencyRule{
		start: start, end: end, ramp: ramp, slow: slow,
		from: siteSet(from), to: siteSet(to),
	})
	return ls
}

// AddSiteSlow slows every message into *and* out of one site on
// [start, end) — the degraded-node shape. Equivalent to two AddLinkSlow
// rules; the two directions accrue independently, so a round trip through
// the site pays the slowdown twice, as it would in a real deployment.
func (ls *LatencySchedule) AddSiteSlow(start, end int64, site int, slow, ramp int64) *LatencySchedule {
	ls.AddLinkSlow(start, end, []int{site}, nil, slow, ramp)
	ls.AddLinkSlow(start, end, nil, []int{site}, slow, ramp)
	return ls
}

// AddFlap adds a flapping slowdown on [start, end): the delay applies only
// during the first `on` steps of every `period`-step cycle (anchored at
// start). Panics on a malformed duty cycle.
func (ls *LatencySchedule) AddFlap(start, end int64, sites []int, slow, period, on int64) *LatencySchedule {
	if period < 2 || on < 1 || on >= period {
		panic(fmt.Sprintf("faults: AddFlap duty cycle on=%d period=%d is malformed", on, period))
	}
	set := siteSet(sites)
	ls.addRule(latencyRule{start: start, end: end, slow: slow, period: period, on: on, from: set})
	ls.addRule(latencyRule{start: start, end: end, slow: slow, period: period, on: on, to: set})
	return ls
}

// SetHeavyTail enables per-(step, link) heavy-tailed delay inflation: with
// probability prob a message direction suffers an additional Pareto(α=2)
// delay of scale `mean`, capped at `cap` slots. The draw is a pure hash of
// (seed, t, from, to), so both runtimes and repeated runs see the same
// inflation pattern. Panics on malformed parameters.
func (ls *LatencySchedule) SetHeavyTail(seed uint64, prob float64, mean, cap int64) *LatencySchedule {
	if prob < 0 || prob > 1 {
		panic(fmt.Sprintf("faults: heavy-tail prob %g out of [0,1]", prob))
	}
	if prob > 0 && (mean < 1 || cap < mean) {
		panic(fmt.Sprintf("faults: heavy-tail needs 1 <= mean (%d) <= cap (%d)", mean, cap))
	}
	ls.htSeed, ls.htProb, ls.htMean, ls.htCap = seed, prob, mean, cap
	return ls
}

// Delay returns the extra delivery slots a message from site `from` to
// site `to` suffers at step t. Nil-safe: a nil schedule delays nothing.
func (ls *LatencySchedule) Delay(t int64, from, to int) int64 {
	if ls == nil {
		return 0
	}
	var d int64
	for i := range ls.rules {
		r := &ls.rules[i]
		if t < r.start || t >= r.end || !r.matches(from, to) {
			continue
		}
		if r.period > 0 && (t-r.start)%r.period >= r.on {
			continue
		}
		if r.ramp > 0 && t-r.start < r.ramp {
			d += r.slow * (t - r.start + 1) / r.ramp
			continue
		}
		d += r.slow
	}
	if ls.htProb > 0 {
		h := mix64(ls.htSeed ^ mix64(uint64(t)+0x9e3779b97f4a7c15) ^ mix64(uint64(from)<<32|uint64(to)))
		if unit(h) < ls.htProb {
			// Pareto(α=2): P(X > x·mean) = 1/x²; u in (0,1].
			u := 1 - unit(mix64(h+1))
			extra := int64(float64(ls.htMean) / math.Sqrt(u))
			if extra > ls.htCap {
				extra = ls.htCap
			}
			d += extra
		}
	}
	return d
}

// NumRules returns the number of slowdown rules (0 on nil).
func (ls *LatencySchedule) NumRules() int {
	if ls == nil {
		return 0
	}
	return len(ls.rules)
}

// Horizon returns the end of the last slowdown window; heavy-tail
// inflation has no horizon of its own. 0 on nil or empty schedules.
func (ls *LatencySchedule) Horizon() int64 {
	if ls == nil {
		return 0
	}
	return ls.horizon
}

// GrayStormConfig parameterizes a seeded latency storm: overlapping
// slowdown episodes against random sites, with exponential onset gaps and
// durations — the delay analogue of StormConfig.
type GrayStormConfig struct {
	Sites int   // total sites in the topology
	Start int64 // first step an episode may begin
	End   int64 // no episode extends past this step

	MeanDuration float64 // mean episode length, in steps
	MeanGap      float64 // mean gap between onsets, in steps
	SlowMin      int64   // per-episode slowdown drawn from [SlowMin, SlowMax]
	SlowMax      int64
	RampFraction float64 // P(an episode ramps in over half its length)
	FlapFraction float64 // P(an episode flaps with a 4-step period instead)
}

// Validate rejects nonsensical storm configurations.
func (c GrayStormConfig) Validate() error {
	if c.Sites <= 0 {
		return fmt.Errorf("faults: GrayStormConfig.Sites=%d must be positive", c.Sites)
	}
	if c.End <= c.Start {
		return fmt.Errorf("faults: GrayStormConfig window [%d, %d) is empty", c.Start, c.End)
	}
	if c.MeanDuration <= 0 || c.MeanGap <= 0 {
		return fmt.Errorf("faults: GrayStormConfig needs positive MeanDuration and MeanGap")
	}
	if c.SlowMin < 1 || c.SlowMax < c.SlowMin {
		return fmt.Errorf("faults: GrayStormConfig needs 1 <= SlowMin (%d) <= SlowMax (%d)", c.SlowMin, c.SlowMax)
	}
	if c.RampFraction < 0 || c.RampFraction > 1 || c.FlapFraction < 0 || c.FlapFraction > 1 {
		return fmt.Errorf("faults: GrayStormConfig fractions out of [0,1]")
	}
	return nil
}

// GrayStorm generates a deterministic latency storm: a Poisson sequence of
// per-site slowdown episodes, each flat, ramped, or flapping. The schedule
// is a pure function of (seed, cfg). It panics on an invalid config.
func GrayStorm(seed uint64, cfg GrayStormConfig) *LatencySchedule {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed ^ 0x67a15701) // distinct stream from Storm's and churn's
	ls := NewLatencySchedule()
	t := float64(cfg.Start) + src.Exp(cfg.MeanGap)
	for int64(t) < cfg.End {
		start := int64(t)
		end := start + 2 + int64(src.Exp(cfg.MeanDuration))
		if end > cfg.End {
			end = cfg.End
		}
		site := src.Intn(cfg.Sites)
		slow := cfg.SlowMin + int64(src.Uint64n(uint64(cfg.SlowMax-cfg.SlowMin+1)))
		switch {
		case src.Bernoulli(cfg.FlapFraction):
			ls.AddFlap(start, end, []int{site}, slow, 4, 2)
		case src.Bernoulli(cfg.RampFraction):
			ls.AddSiteSlow(start, end, site, slow, (end-start)/2)
		default:
			ls.AddSiteSlow(start, end, site, slow, 0)
		}
		t += src.Exp(cfg.MeanGap)
	}
	return ls
}
