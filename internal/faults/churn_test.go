package faults

import (
	"reflect"
	"testing"
)

func TestChurnDeterministic(t *testing.T) {
	cfg := ChurnConfig{SiteMTBF: 50, SiteMTTR: 10, LinkMTBF: 30, LinkMTTR: 20}
	a := NewChurn(7, 9, 9, cfg)
	b := NewChurn(7, 9, 9, cfg)
	for step := 0; step < 2000; step++ {
		ea := a.Step(float64(step))
		eb := b.Step(float64(step))
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("step %d: schedules diverged: %v vs %v", step, ea, eb)
		}
	}
	// A different seed must produce a different schedule.
	c := NewChurn(8, 9, 9, cfg)
	same := true
	for step := 0; step < 2000 && same; step++ {
		if !reflect.DeepEqual(a.Step(float64(step+2000)), c.Step(float64(step+2000))) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

func TestChurnAlternatesAndBalances(t *testing.T) {
	// Events must strictly alternate fail/repair per element, and the
	// long-run down fraction must approach MTTR/(MTBF+MTTR).
	cfg := ChurnConfig{LinkMTBF: 40, LinkMTTR: 60}
	c := NewChurn(3, 0, 4, cfg)
	down := make([]bool, 4)
	downSteps, totalSteps := 0, 60000
	for step := 0; step < totalSteps; step++ {
		for _, e := range c.Step(float64(step)) {
			switch e.Kind {
			case LinkFail:
				if down[e.Index] {
					t.Fatalf("step %d: link %d failed while down", step, e.Index)
				}
				down[e.Index] = true
			case LinkRepair:
				if !down[e.Index] {
					t.Fatalf("step %d: link %d repaired while up", step, e.Index)
				}
				down[e.Index] = false
			default:
				t.Fatalf("unexpected site event %v with site churn disabled", e)
			}
		}
		for _, d := range down {
			if d {
				downSteps++
			}
		}
	}
	frac := float64(downSteps) / float64(totalSteps*4)
	want := cfg.LinkMTTR / (cfg.LinkMTBF + cfg.LinkMTTR)
	if frac < want-0.08 || frac > want+0.08 {
		t.Fatalf("down fraction %.3f, want about %.3f", frac, want)
	}
}

func TestChurnDisabled(t *testing.T) {
	c := NewChurn(1, 5, 5, ChurnConfig{})
	for step := 0; step < 1000; step++ {
		if ev := c.Step(float64(step)); len(ev) != 0 {
			t.Fatalf("disabled churn produced events %v", ev)
		}
	}
	s, l := c.DownCounts()
	if s != 0 || l != 0 {
		t.Fatalf("disabled churn holds %d sites, %d links down", s, l)
	}
}

func TestChurnConfigValidate(t *testing.T) {
	if err := (ChurnConfig{SiteMTBF: 10}).Validate(); err == nil {
		t.Fatal("MTBF without MTTR accepted")
	}
	if err := (ChurnConfig{LinkMTBF: -1, LinkMTTR: 1}).Validate(); err == nil {
		t.Fatal("negative MTBF accepted")
	}
	if err := (ChurnConfig{SiteMTBF: 10, SiteMTTR: 5}).Validate(); err != nil {
		t.Fatal(err)
	}
}
