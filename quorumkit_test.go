package quorumkit

import (
	"math"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	f := RingDensity(101, 0.96, 0.96)
	m, err := ModelFromDensity(f)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Optimize(0.75)
	if err := res.Assignment.Validate(101); err != nil {
		t.Fatal(err)
	}
	// On the bare ring at α=.75 the optimum is read-one (components are
	// almost always small).
	if res.Assignment.QR != 1 {
		t.Fatalf("ring α=.75 optimum at q_r=%d", res.Assignment.QR)
	}
	if math.Abs(res.Availability-0.72) > 0.01 {
		t.Fatalf("availability %g, want ≈ 0.72", res.Availability)
	}
}

func TestFacadeNamedAssignments(t *testing.T) {
	if a := Majority(101); a.QR != 50 || a.QW != 52 {
		t.Fatalf("Majority %v", a)
	}
	if a := ReadOneWriteAll(101); a.QR != 1 || a.QW != 101 {
		t.Fatalf("ROWA %v", a)
	}
	if a := ForReadQuorum(28, 101); a.QW != 74 {
		t.Fatalf("ForReadQuorum %v", a)
	}
}

func TestFacadeDensities(t *testing.T) {
	for _, f := range []PMF{
		RingDensity(21, 0.9, 0.9),
		CompleteDensity(21, 0.9, 0.9),
		BusDensity(21, 0.9, 0.9, true),
		BusDensity(21, 0.9, 0.9, false),
	} {
		if err := f.Validate(1e-9); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeTopologiesAndState(t *testing.T) {
	g := PaperTopology(16)
	if g.N() != 101 || g.M() != 117 {
		t.Fatalf("topology 16: %d/%d", g.N(), g.M())
	}
	st := NewNetworkState(Ring(5), nil)
	if st.TotalVotes() != 5 {
		t.Fatalf("votes %d", st.TotalVotes())
	}
	if Complete(4).M() != 6 {
		t.Fatal("complete graph")
	}
}

func TestFacadeSimulationPipeline(t *testing.T) {
	g := Ring(21)
	m, err := CollectModel(g, 50_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint identity A(1,1) ≈ p = 0.96.
	if got := m.Availability(1, 1); math.Abs(got-0.96) > 0.02 {
		t.Fatalf("A(1,1) = %g", got)
	}
	res := m.Optimize(0.5)
	if err := res.Assignment.Validate(21); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeReplicationStack(t *testing.T) {
	g := Ring(9)
	st := NewNetworkState(g, nil)
	obj, err := NewObject(st, Majority(9))
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Write(0, 5) {
		t.Fatal("write denied")
	}
	v, _, ok := obj.Read(8)
	if !ok || v != 5 {
		t.Fatalf("read (%d,%v)", v, ok)
	}
	est := NewEstimator(9, 9)
	for i := 0; i < 9; i++ {
		for k := 0; k < 100; k++ {
			est.Observe(i, 3)
		}
	}
	mgr := NewManager(obj, est, 1.0)
	changed, err := mgr.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("manager should reassign toward small read quorums")
	}
}

func TestFacadeNewSurfaces(t *testing.T) {
	st := NewNetworkState(Ring(5), nil)
	d := NewDatabase(st)
	if err := d.Create("x", Majority(5)); err != nil {
		t.Fatal(err)
	}
	if ok, err := d.Write("x", 0, 7); err != nil || !ok {
		t.Fatalf("db write %v %v", ok, err)
	}
	c, err := NewCluster(NewNetworkState(Ring(5), nil), Majority(5))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Write(0, 1) {
		t.Fatal("cluster write")
	}
	a, err := NewAsyncCluster(NewNetworkState(Ring(5), nil), Majority(5))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !a.Write(0, 1) {
		t.Fatal("async write")
	}
	if _, err := GridCoterie(3, 3); err != nil {
		t.Fatal(err)
	}
	tr := GenerateTrace(5, 5, 10, 2, 100, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var log HistoryLog
	log.RecordWrite(0, true, 1, 1, 0.5)
	if err := log.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHeteroRingOptimization(t *testing.T) {
	// An asymmetric ring: one fragile arc. Build a model from the exact
	// per-site densities and optimize with access weights concentrated on
	// the reliable half.
	n := 11
	ps := make([]float64, n)
	rs := make([]float64, n)
	weights := make([]float64, n)
	for i := range ps {
		ps[i], rs[i], weights[i] = 0.98, 0.98, 1
		if i < 4 {
			ps[i], rs[i] = 0.6, 0.6 // fragile arc
		}
	}
	fs := RingHeteroDensities(ps, rs)
	for i, f := range fs {
		if err := f.Validate(1e-9); err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
	}
	sum := 0.0
	for i := range weights {
		sum += weights[i]
	}
	for i := range weights {
		weights[i] /= sum
	}
	m, err := NewModel(weights, weights, fs)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Optimize(0.75)
	if err := res.Assignment.Validate(n); err != nil {
		t.Fatal(err)
	}
	if res.Availability <= 0 || res.Availability >= 1 {
		t.Fatalf("availability %g", res.Availability)
	}
}

func TestFacadeSimulatorDirect(t *testing.T) {
	s := NewSimulator(Ring(11), nil, PaperParams(), 3)
	s.RunAccesses(100)
	if s.AccessCount() != 100 {
		t.Fatalf("accesses %d", s.AccessCount())
	}
}
