// Dynamic quorum reassignment demo (paper §2.2 and §4.3): a replicated
// object rides out a failure storm while the reassignment manager tracks a
// workload whose read-write ratio shifts mid-run. Quorum assignments are
// changed through the QR protocol — only inside a component holding a write
// quorum, with version numbers carrying the change to the rest of the
// network as partitions heal — and every read is checked against one-copy
// serializability.
//
// The manager runs with a write floor (§5.4): without it, early all-up
// observations would lure the optimizer into read-one/write-all, whose
// write quorum of 101 votes is then almost never available to undo the
// choice — the lock-in hazard the paper's write constraint exists to avoid.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"

	"quorumkit"
	"quorumkit/internal/rng"
)

func main() {
	g := quorumkit.PaperTopology(4)
	n := g.N()
	s := quorumkit.NewSimulator(g, nil, quorumkit.PaperParams(), 7)
	obj, err := quorumkit.NewObject(s.State(), quorumkit.Majority(n))
	if err != nil {
		panic(err)
	}
	est := quorumkit.NewEstimator(n, n)
	est.SetDecay(0.9999) // age out history so the estimator tracks change
	mgr := quorumkit.NewManager(obj, est, 0.9)
	mgr.MinWrite = 0.05

	const (
		warmup = 20_000 // estimator-only prefix: no reassignment decisions
		phase  = 60_000
	)

	src := rng.New(99)
	alpha := 0.9 // read-heavy first half
	var reads, readsOK, writes, writesOK, staleReads int

	s.OnAccess = func(site, votes int, at float64) {
		est.Age()
		est.Observe(site, votes)
		if src.Bernoulli(alpha) {
			reads++
			if _, stamp, ok := obj.Read(site); ok {
				readsOK++
				if stamp != obj.LatestStamp() {
					staleReads++
				}
			}
		} else {
			writes++
			if obj.Write(site, int64(at)) {
				writesOK++
			}
		}
		if s.AccessCount() > warmup && s.AccessCount()%2000 == 0 {
			changed, err := mgr.Tick()
			if err != nil {
				panic(err)
			}
			if changed {
				a, ver, _ := obj.EffectiveAssignment(site)
				fmt.Printf("  t=%8.1f  reassigned to %v (version %d)\n", at, a, ver)
			}
		}
	}

	report := func(label string) {
		fmt.Printf("%s: reads %d/%d (%.4f), writes %d/%d (%.4f)\n",
			label, readsOK, reads, frac(readsOK, reads),
			writesOK, writes, frac(writesOK, writes))
		reads, readsOK, writes, writesOK = 0, 0, 0, 0
	}

	fmt.Printf("warm-up: %d accesses under majority consensus\n", warmup)
	s.RunAccesses(warmup)
	report("  warm-up")

	fmt.Printf("phase 1: α = %.1f (read-heavy), %d accesses\n", alpha, phase)
	s.RunAccesses(phase)
	report("  phase 1")

	alpha = 0.1
	mgr.SetAlpha(alpha)
	fmt.Printf("phase 2: α = %.1f (write-heavy), %d accesses\n", alpha, phase)
	s.RunAccesses(phase)
	report("  phase 2")

	fmt.Printf("\nreassignments installed: %d (attempted %d)\n",
		mgr.Reassignments(), mgr.Attempts())
	fmt.Printf("stale reads (must be 0): %d\n", staleReads)
	if staleReads > 0 {
		panic("one-copy serializability violated")
	}
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
