// Vote-weight study: on asymmetric topologies the uniform one-vote-per-copy
// assignment the paper uses (justified by its symmetric topologies) is not
// optimal — concentrating votes at well-connected sites can buy real
// availability. This example optimizes vote assignments jointly with the
// quorum assignment on a star and a path, the companion problem of the
// paper's reference [7].
//
//	go run ./examples/voteweights
package main

import (
	"fmt"

	"quorumkit/internal/graph"
	"quorumkit/internal/votes"
)

func main() {
	cfg := votes.Config{P: 0.9, R: 0.7, Alpha: 0.5, MaxVotesPerSite: 3}

	study := []struct {
		name string
		g    *graph.Graph
	}{
		{"star (hub + 5 leaves)", graph.Star(6)},
		{"path of 6", graph.Path(6)},
		{"ring of 6", graph.Ring(6)},
	}

	for _, s := range study {
		uni, err := votes.Uniform(s.g, cfg)
		if err != nil {
			panic(err)
		}
		deg, err := votes.Evaluate(s.g, votes.DegreeHeuristic(s.g, cfg.MaxVotesPerSite), cfg)
		if err != nil {
			panic(err)
		}
		hc, err := votes.HillClimb(s.g, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s  (p=%.2f, r=%.2f, α=%.2f)\n", s.name, cfg.P, cfg.R, cfg.Alpha)
		fmt.Printf("  uniform votes   %v  %v  A = %.4f\n", uni.Votes, uni.Assignment, uni.Availability)
		fmt.Printf("  degree heuristic%v  %v  A = %.4f\n", deg.Votes, deg.Assignment, deg.Availability)
		fmt.Printf("  hill-climbed    %v  %v  A = %.4f  (+%.4f over uniform)\n\n",
			hc.Votes, hc.Assignment, hc.Availability, hc.Availability-uni.Availability)
	}

	fmt.Println("On the symmetric ring the climb stays (essentially) uniform —")
	fmt.Println("matching the paper's choice of one vote per copy for its")
	fmt.Println("symmetric topologies. On the star, votes concentrate at the hub.")
}
