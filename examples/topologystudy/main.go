// Topology study: sweep the paper's ring-plus-chords family and show how
// connectivity moves the optimal quorum assignment — the central
// qualitative finding of §5: sparse networks favor read-one/write-all,
// dense networks favor majority, and the read-write ratio decides where
// the crossover falls.
//
//	go run ./examples/topologystudy [-accesses N]
package main

import (
	"flag"
	"fmt"

	"quorumkit"
)

func main() {
	accesses := flag.Int64("accesses", 150_000, "simulation horizon per topology")
	flag.Parse()

	chordCounts := []int{0, 1, 2, 4, 16, 256}
	alphas := []float64{0.25, 0.5, 0.75}

	fmt.Printf("%-14s", "topology")
	for _, a := range alphas {
		fmt.Printf("  α=%-4.2f: opt (A)      ", a)
	}
	fmt.Println()

	for _, chords := range chordCounts {
		g := quorumkit.PaperTopology(chords)
		m, err := quorumkit.CollectModel(g, *accesses, uint64(chords)+1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("ring+%-9d", chords)
		for _, alpha := range alphas {
			res := m.Optimize(alpha)
			fmt.Printf("  q_r=%-3d (%.4f)     ", res.Assignment.QR, res.Availability)
		}
		fmt.Println()
	}

	fmt.Println("\nreading the table: low q_r → read-one/write-all territory;")
	fmt.Println("q_r=50 → majority territory. Denser topologies and lower read")
	fmt.Println("fractions push the optimum toward majority, reproducing §5.5.")
}
