// Write-constraint demo (paper §5.4): on a sparse topology with a
// read-heavy workload the unconstrained optimum is read-one/write-all,
// which starves writes almost completely. Imposing a minimum write
// throughput A_w trades a little total availability for a usable write
// channel — this example reproduces the paper's worked numbers on the
// Figure 4 topology (101-site ring plus two chords, α = 75%, A_w ≥ 20%).
//
//	go run ./examples/writeconstraint
package main

import (
	"fmt"

	"quorumkit"
)

func main() {
	// Estimate the component-size densities on-line from a simulation of
	// the topology — the paper's pipeline for networks with no closed form.
	g := quorumkit.PaperTopology(2)
	m, err := quorumkit.CollectModel(g, 400_000, 1)
	if err != nil {
		panic(err)
	}

	const alpha = 0.75
	un := m.Optimize(alpha)
	fmt.Printf("topology 2 (ring + 2 chords), α = %.2f\n\n", alpha)
	fmt.Printf("unconstrained optimum: %v\n", un.Assignment)
	fmt.Printf("  availability %.4f, but write availability only %.4f\n",
		un.Availability, m.Availability(0, un.Assignment.QR))
	fmt.Printf("  (the paper: optimum q_r=1, A = 72%%, writes succeed only when\n")
	fmt.Printf("   every one of 101 copies is accessible)\n\n")

	for _, floor := range []float64{0.05, 0.10, 0.20, 0.40} {
		res, err := m.OptimizeConstrained(alpha, floor)
		if err != nil {
			fmt.Printf("A_w ≥ %.2f: infeasible (%v)\n", floor, err)
			continue
		}
		fmt.Printf("A_w ≥ %.2f: %v  A = %.4f (write A = %.4f)\n",
			floor, res.Assignment, res.Availability,
			m.Availability(0, res.Assignment.QR))
	}

	fmt.Printf("\n(the paper reports q_r = 28 and A = 50%% at A_w ≥ 20%%)\n")
}
