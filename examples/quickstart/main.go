// Quickstart: compute an optimal quorum assignment from a closed-form
// component-size density, exactly as a deployment with a known symmetric
// topology would.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"quorumkit"
)

func main() {
	// A 101-site fully-connected network, each site and link 96% reliable —
	// the densest topology of the paper's study.
	f := quorumkit.CompleteDensity(101, 0.96, 0.96)

	m, err := quorumkit.ModelFromDensity(f)
	if err != nil {
		panic(err)
	}

	fmt.Println("optimal quorum assignments, 101-site fully-connected network:")
	fmt.Printf("%-8s %-18s %-12s %-10s %-10s\n", "α", "assignment", "A(α,q_r)", "read A", "write A")
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res := m.Optimize(alpha)
		fmt.Printf("%-8.2f %-18v %-12.4f %-10.4f %-10.4f\n",
			alpha, res.Assignment, res.Availability,
			m.ReadAvail(res.Assignment.QR), m.WriteAvailForReadQuorum(res.Assignment.QR))
	}

	// Compare the classic fixed policies at a 75% read workload.
	const alpha = 0.75
	maj := quorumkit.Majority(101)
	rowa := quorumkit.ReadOneWriteAll(101)
	fmt.Printf("\nfixed policies at α=%.2f:\n", alpha)
	fmt.Printf("  majority consensus %v: A = %.4f\n", maj, m.AvailabilityFor(alpha, maj))
	fmt.Printf("  read-one/write-all %v: A = %.4f\n", rowa, m.AvailabilityFor(alpha, rowa))
	fmt.Printf("  optimal            %v: A = %.4f\n",
		m.Optimize(alpha).Assignment, m.Optimize(alpha).Availability)
}
