// Multi-object database demo: several replicated data items share one
// failing network, each with its own read-write mix, and each item's
// quorum assignment is optimized independently from its own on-line
// statistics — the per-data-item deployment the paper's algorithm is
// designed for.
//
//	go run ./examples/multiobject
package main

import (
	"fmt"

	"quorumkit"
	"quorumkit/internal/db"
	"quorumkit/internal/rng"
)

func main() {
	g := quorumkit.PaperTopology(16)
	n := g.N()
	s := quorumkit.NewSimulator(g, nil, quorumkit.PaperParams(), 21)
	d := db.New(s.State())

	// Three data items with very different workloads.
	items := []struct {
		name  string
		alpha float64
	}{
		{"catalog", 0.98},  // almost read-only
		{"sessions", 0.50}, // mixed
		{"ledger", 0.05},   // write-heavy
	}
	for _, it := range items {
		if err := d.Create(it.name, quorumkit.Majority(n)); err != nil {
			panic(err)
		}
		if err := d.EnableDynamic(it.name, it.alpha, 0.10); err != nil {
			panic(err)
		}
	}

	src := rng.New(5)
	s.OnAccess = func(site, votesInComp int, at float64) {
		// Each arriving access targets a random item with that item's
		// read-write mix.
		it := items[src.Intn(len(items))]
		if src.Bernoulli(it.alpha) {
			if _, _, err := d.Read(it.name, site); err != nil {
				panic(err)
			}
		} else {
			if _, err := d.Write(it.name, site, int64(at)); err != nil {
				panic(err)
			}
		}
		if s.AccessCount()%5000 == 0 {
			if _, err := d.Tick(); err != nil {
				panic(err)
			}
		}
	}
	const accesses = 150_000
	fmt.Printf("running %d accesses over 3 data items on topology 16...\n\n", accesses)
	s.RunAccesses(accesses)

	fmt.Printf("%-10s %-8s %-18s %-14s\n", "item", "α(seen)", "assignment", "availability")
	s.State().SetAll(true) // reconnect to inspect the latest assignments
	as := d.Assignments(0)
	for _, it := range items {
		st, err := d.Stats(it.name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s %-8.2f %-18v %-14.4f\n",
			it.name, st.ReadFraction(), as[it.name], st.Availability())
	}
	fmt.Println("\nread-heavy items end at small read quorums, write-heavy items")
	fmt.Println("near majority — each optimized from its own measured workload.")
}
