// Diurnal workload demo: the read-write mix follows a day/night cycle
// (read-heavy by day, write-heavy by night), and the dynamic quorum
// reassignment manager tracks it on-line with a decayed estimator —
// the §4.3 scenario of exploiting temporal characteristics of the access
// request stream.
//
//	go run ./examples/diurnal
package main

import (
	"fmt"

	"quorumkit"
	"quorumkit/internal/workload"
)

func main() {
	g := quorumkit.PaperTopology(16)
	n := g.N()
	s := quorumkit.NewSimulator(g, nil, quorumkit.PaperParams(), 17)
	obj, err := quorumkit.NewObject(s.State(), quorumkit.Majority(n))
	if err != nil {
		panic(err)
	}
	est := quorumkit.NewEstimator(n, n)
	est.SetDecay(0.9999)
	mgr := quorumkit.NewManager(obj, est, 0.5)
	mgr.MinWrite = 0.30
	mgr.Hysteresis = 0.01

	// One "day" is 400 time units ≈ 40k accesses at 101 sites.
	day := workload.Diurnal{Period: 400, Mean: 0.5, Amplitude: 0.45}
	gen := workload.NewGenerator(day, 4)

	var granted, total int
	s.OnAccess = func(site, votes int, at float64) {
		est.Age()
		est.Observe(site, votes)
		total++
		if gen.IsRead(at) {
			if _, _, ok := obj.Read(site); ok {
				granted++
			}
		} else if obj.Write(site, int64(total)) {
			granted++
		}
		if s.AccessCount()%2500 == 0 {
			mgr.SetAlpha(day.Alpha(at)) // each site can read the clock
			if changed, err := mgr.Tick(); err != nil {
				panic(err)
			} else if changed {
				a, _, _ := obj.EffectiveAssignment(site)
				fmt.Printf("t=%7.1f  α(t)=%.2f  reassigned to %v\n", at, day.Alpha(at), a)
			}
		}
	}

	const accesses = 160_000 // four full days
	fmt.Printf("running %d accesses over 4 diurnal cycles on topology 16\n\n", accesses)
	s.RunAccesses(accesses)

	fmt.Printf("\noverall availability: %.4f (observed α %.2f, %d reassignments)\n",
		float64(granted)/float64(total), gen.ObservedAlpha(), mgr.Reassignments())
}
