// Message-level protocol demo: runs the quorum consensus and QR protocols
// as explicit vote-collection rounds over a LAN/WAN cluster topology,
// printing what the partition does to message traffic and grant decisions.
// The same operations are then replayed on the concurrent
// goroutine-per-node runtime to show both engines agree.
//
//	go run ./examples/clusterdemo
package main

import (
	"fmt"

	"quorumkit"
	"quorumkit/internal/cluster"
	"quorumkit/internal/topo"
)

func main() {
	// Three 5-site LANs joined in a WAN ring: 15 sites, T = 15.
	g := topo.Clusters(3, 5)
	n := g.N()
	fmt.Printf("topology: 3 clusters × 5 sites, %d links (%d WAN)\n\n", g.M(), 3)

	st := quorumkit.NewNetworkState(g, nil)
	c, err := quorumkit.NewCluster(st, quorumkit.Majority(n))
	if err != nil {
		panic(err)
	}
	c.SetWireMode(true) // every message round-trips the binary codec

	report := func(action string, before cluster.Stats) {
		s := c.Stats()
		fmt.Printf("%-44s msgs sent %3d, delivered %3d, dropped %3d\n",
			action, s.Sent-before.Sent, s.Delivered-before.Delivered, s.Dropped-before.Dropped)
	}

	b := c.Stats()
	ok := c.Write(0, 100)
	report(fmt.Sprintf("write at site 0 (all up): granted=%v", ok), b)

	// Cut both WAN links touching cluster 2 (sites 10-14): it is isolated.
	st.FailLink(g.EdgeIndex(5, 14)) // cluster1 → cluster2 WAN link
	st.FailLink(g.EdgeIndex(4, 10)) // cluster2 → cluster0 WAN link
	fmt.Println("\n-- WAN links to cluster 2 cut: {0..9} | {10..14} --")

	b = c.Stats()
	ok = c.Write(3, 200)
	report(fmt.Sprintf("write at site 3 (10-vote side): granted=%v", ok), b)

	b = c.Stats()
	_, _, ok = c.Read(12)
	report(fmt.Sprintf("read at site 12 (5-vote side): granted=%v", ok), b)

	// The majority side reassigns toward reads while cluster 2 is away.
	if err := c.Reassign(0, quorumkit.ForReadQuorum(3, n)); err != nil {
		panic(err)
	}
	fmt.Println("\nmajority side installed (q_r=3, q_w=13) via the QR protocol")

	// Heal: cluster 2 rejoins, learns the new assignment by message.
	st.RepairLink(g.EdgeIndex(5, 14))
	st.RepairLink(g.EdgeIndex(4, 10))
	a, ver, _ := c.EffectiveAssignment(12)
	v, _, _ := c.Read(12)
	fmt.Printf("after heal, site 12 sees %v (version %d) and reads %d\n\n", a, ver, v)

	// Replay the happy-path ops on the concurrent runtime.
	ac, err := quorumkit.NewAsyncCluster(quorumkit.NewNetworkState(g, nil), quorumkit.Majority(n))
	if err != nil {
		panic(err)
	}
	defer ac.Close()
	ac.Write(0, 100)
	av, _, _ := ac.Read(12)
	fmt.Printf("concurrent runtime agrees: read at 12 → %d (messages: %d)\n",
		av, ac.MessagesSent())
}
