package quorumkit

// One benchmark per table and figure of the paper's evaluation (§5), plus
// ablation benches for the design choices called out in DESIGN.md. Each
// figure bench runs the full pipeline — simulate the topology, estimate
// f_i on-line, evaluate the availability curves — and reports the headline
// numbers as benchmark metrics so `go test -bench` output documents the
// reproduction (see EXPERIMENTS.md for the paper-vs-measured record).

import (
	"testing"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
	"quorumkit/internal/experiments"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/replica"
	"quorumkit/internal/rng"
	"quorumkit/internal/sim"
	"quorumkit/internal/topo"
	"quorumkit/internal/votes"
)

func graphStar6() *graph.Graph { return graph.Star(6) }

// benchCollect is the horizon used by the figure benches: large enough to
// resolve curve shape, small enough to keep -bench runs minutes, not hours.
// cmd/figures uses longer horizons for the recorded EXPERIMENTS.md runs.
func benchCollect(seed uint64) sim.CollectConfig {
	return sim.CollectConfig{
		Mode:     sim.TimeWeighted,
		Accesses: 120_000,
		Warmup:   10_000,
		Seed:     seed,
	}
}

// benchFigure runs one figure per iteration and reports A(α, ·) metrics:
// the availability at q_r = 1 and q_r = 50 for α = 0.75, and the optimum.
func benchFigure(b *testing.B, chords int) {
	b.Helper()
	spec, err := experiments.FigureByChords(chords)
	if err != nil {
		b.Fatal(err)
	}
	var last experiments.FigureResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure(spec, sim.PaperParams(), benchCollect(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, s := range last.Series {
		if s.Alpha != 0.75 {
			continue
		}
		qr, best := s.Best()
		b.ReportMetric(s.Avail[0], "A(.75,qr=1)")
		b.ReportMetric(s.Avail[len(s.Avail)-1], "A(.75,qr=50)")
		b.ReportMetric(best, "A(.75,opt)")
		b.ReportMetric(float64(qr), "opt_qr(.75)")
	}
}

func BenchmarkFigure2_Topology0(b *testing.B)       { benchFigure(b, 0) }
func BenchmarkFigure3_Topology1(b *testing.B)       { benchFigure(b, 1) }
func BenchmarkFigure4_Topology2(b *testing.B)       { benchFigure(b, 2) }
func BenchmarkFigure5_Topology4(b *testing.B)       { benchFigure(b, 4) }
func BenchmarkFigure6_Topology16(b *testing.B)      { benchFigure(b, 16) }
func BenchmarkFigure7_Topology256(b *testing.B)     { benchFigure(b, 256) }
func BenchmarkFigure7b_FullyConnected(b *testing.B) { benchFigure(b, 4949) }

// BenchmarkTable_WriteConstraint reproduces the §5.4 worked example on the
// Figure 4 topology: α = 75%, write floor A_w = 20%.
func BenchmarkTable_WriteConstraint(b *testing.B) {
	spec, _ := experiments.FigureByChords(2)
	var row experiments.WriteConstraintRow
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure(spec, sim.PaperParams(), benchCollect(uint64(i)+42))
		if err != nil {
			b.Fatal(err)
		}
		row, err = experiments.WriteConstraint(res, 0.75, 0.20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.Unconstrained.Assignment.QR), "unconstrained_qr")
	b.ReportMetric(row.Unconstrained.Availability, "unconstrained_A")
	b.ReportMetric(float64(row.Constrained.Assignment.QR), "constrained_qr")
	b.ReportMetric(row.Constrained.Availability, "constrained_A")
	b.ReportMetric(row.WriteAvailAtOpt, "write_A_at_opt")
}

// BenchmarkTable_OptimaByAlpha reproduces the §5.5 analysis: how many
// (topology, α) optima land at q_r=1, at the majority endpoint, or in the
// interior, across the sparse-to-dense topology sweep.
func BenchmarkTable_OptimaByAlpha(b *testing.B) {
	var endpoint1, majority, interior int
	for i := 0; i < b.N; i++ {
		endpoint1, majority, interior = 0, 0, 0
		var results []experiments.FigureResult
		for _, chords := range []int{0, 1, 2, 4, 16, 256} {
			spec, _ := experiments.FigureByChords(chords)
			res, err := experiments.RunFigure(spec, sim.PaperParams(), benchCollect(uint64(i)+7))
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, res)
		}
		for _, row := range experiments.OptimaTable(results) {
			switch row.Class {
			case "q_r=1":
				endpoint1++
			case "majority":
				majority++
			default:
				interior++
			}
		}
	}
	b.ReportMetric(float64(endpoint1), "optima_at_qr1")
	b.ReportMetric(float64(majority), "optima_at_majority")
	b.ReportMetric(float64(interior), "optima_interior")
}

// BenchmarkAnalyticDensities times the §4.2 closed forms at study size.
func BenchmarkAnalyticDensities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = dist.Ring(101, 0.96, 0.96)
		_ = dist.Complete(101, 0.96, 0.96)
		_ = dist.BusKillsSites(101, 0.96, 0.96)
	}
}

// BenchmarkOptimizerStrategies is the ablation for step 4 of Figure 1:
// exhaustive scan versus golden-section versus parabolic search. The
// evaluation-count metrics quantify the savings the paper motivates.
func BenchmarkOptimizerStrategies(b *testing.B) {
	f := dist.Complete(101, 0.96, 0.96)
	m, err := core.ModelFromSingleDensity(f)
	if err != nil {
		b.Fatal(err)
	}
	var ex, gd, pb core.Result
	for i := 0; i < b.N; i++ {
		ex = m.Optimize(0.75)
		gd = m.OptimizeGolden(0.75)
		pb = m.OptimizeParabolic(0.75)
	}
	b.ReportMetric(float64(ex.Evaluations), "evals_exhaustive")
	b.ReportMetric(float64(gd.Evaluations), "evals_golden")
	b.ReportMetric(float64(pb.Evaluations), "evals_parabolic")
	if gd.Availability != ex.Availability || pb.Availability != ex.Availability {
		b.Fatal("search strategies disagree on a paper model")
	}
}

// BenchmarkEstimatorModes is the ablation comparing the paper's sampled
// on-line estimator with the PASTA time-weighted variant at equal horizon.
func BenchmarkEstimatorModes(b *testing.B) {
	g := topo.Paper(4)
	p := sim.PaperParams()
	var errS, errW float64
	for i := 0; i < b.N; i++ {
		// Reference from a long run.
		ref, _, err := sim.Collect(g, nil, p, sim.CollectConfig{
			Mode: sim.TimeWeighted, Accesses: 300_000, Warmup: 10_000, Seed: 999,
		})
		if err != nil {
			b.Fatal(err)
		}
		short := sim.CollectConfig{Accesses: 40_000, Warmup: 4_000, Seed: uint64(i) + 5}
		short.Mode = sim.Sampled
		ms, _, err := sim.Collect(g, nil, p, short)
		if err != nil {
			b.Fatal(err)
		}
		short.Mode = sim.TimeWeighted
		mw, _, err := sim.Collect(g, nil, p, short)
		if err != nil {
			b.Fatal(err)
		}
		errS, errW = 0, 0
		for qr := 1; qr <= 50; qr++ {
			refA := ref.Availability(0.5, qr)
			dS := ms.Availability(0.5, qr) - refA
			dW := mw.Availability(0.5, qr) - refA
			errS += dS * dS
			errW += dW * dW
		}
	}
	b.ReportMetric(errS, "sse_sampled")
	b.ReportMetric(errW, "sse_timeweighted")
}

// BenchmarkDynamicReassignment exercises the §4.3 pipeline: a failure storm
// with the reassignment manager chasing the optimal assignment on-line.
func BenchmarkDynamicReassignment(b *testing.B) {
	g := topo.Paper(4)
	var reassignments int
	for i := 0; i < b.N; i++ {
		st := core.NewEstimator(g.N(), g.N())
		netState := sim.New(g, nil, sim.PaperParams(), uint64(i)+3)
		obj, err := replica.NewObject(netState.State(), quorum.Majority(g.N()))
		if err != nil {
			b.Fatal(err)
		}
		mgr := replica.NewManager(obj, st, 0.75)
		src := rng.New(uint64(i) + 11)
		ticks := 0
		netState.OnAccess = func(site, votes int, at float64) {
			st.Observe(site, votes)
			if src.Bernoulli(0.75) {
				obj.Read(site)
			} else {
				obj.Write(site, int64(votes))
			}
			ticks++
			if ticks%2000 == 0 {
				if _, err := mgr.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		}
		netState.RunAccesses(20_000)
		reassignments = mgr.Reassignments()
	}
	b.ReportMetric(float64(reassignments), "reassignments")
}

// BenchmarkTable_DynamicVsStatic reproduces the §4.3 comparison: dynamic
// quorum reassignment versus the best static assignment on a workload with
// alternating read-write ratios.
func BenchmarkTable_DynamicVsStatic(b *testing.B) {
	// Default phase length: short phases understate the dynamic arm because
	// the reassignment lag is amortized over less time.
	cfg := experiments.DefaultDynamicConfig()
	var res experiments.DynamicStudy
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		res, err = experiments.DynamicVsStatic(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.StaticMajority, "A_static_majority")
	b.ReportMetric(res.StaticOptimal, "A_static_optimal")
	b.ReportMetric(res.Dynamic, "A_dynamic")
	b.ReportMetric(float64(res.Reassignments), "reassignments")
}

// BenchmarkTable_SurvVsAcc reproduces the §3 metric discussion: optima
// under SURV versus ACC on a mid-density topology.
func BenchmarkTable_SurvVsAcc(b *testing.B) {
	var res experiments.SurvAccStudy
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.SurvVsAcc(16, 0.5, 100_000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ACCOptimal.Availability, "A_acc_opt")
	b.ReportMetric(res.SURVOptimal.Availability, "A_surv_opt")
	b.ReportMetric(res.ACCofSURVChoice, "A_acc_of_surv_pick")
}

// BenchmarkTable_ProtocolComparison runs the paired five-protocol study
// (static majority / ROWA / Figure-1 optimal / dynamic voting [13] / QR
// dynamic) on topology 4 at a read-heavy mix.
func BenchmarkTable_ProtocolComparison(b *testing.B) {
	var res experiments.ProtocolComparison
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.CompareProtocols(4, 0.75, 60_000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.StaticMajority, "A_majority")
	b.ReportMetric(res.StaticROWA, "A_rowa")
	b.ReportMetric(res.StaticOptimal, "A_optimal")
	b.ReportMetric(res.DynamicVoting, "A_dynvote")
	b.ReportMetric(res.QRDynamic, "A_qr_dynamic")
}

// BenchmarkTable_Crossover reproduces the §5.5 crossover analysis: the
// read fraction at which the optimal assignment leaves the majority
// endpoint, per topology.
func BenchmarkTable_Crossover(b *testing.B) {
	var rows []experiments.CrossoverRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.CrossoverTable(sim.PaperParams(), benchCollect(uint64(i)+3),
			[]int{0, 2, 16, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Alpha, "crossover_"+name(r.Chords))
	}
}

func name(chords int) string { return "t" + itoa(chords) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkTable_ReplicationBenefit reproduces the spirit of the paper's
// reference [15]: optimal replicated availability versus the best single
// primary copy.
func BenchmarkTable_ReplicationBenefit(b *testing.B) {
	var res experiments.BenefitStudy
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.ReplicationBenefit(16, 0.75, sim.PaperParams(), benchCollect(uint64(i)+9))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Replicated.Availability, "A_replicated")
	b.ReportMetric(res.SingleCopy, "A_single_copy")
	b.ReportMetric(res.Ratio, "benefit_ratio")
}

// BenchmarkTable_ModelMismatch quantifies §4.3's motivation for on-line
// estimation: under correlated regional failures the independence-assuming
// closed form mis-predicts availability; the on-line estimate does not.
func BenchmarkTable_ModelMismatch(b *testing.B) {
	var res experiments.MismatchStudy
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.ModelMismatch(0.5, experiments.DefaultShock(), 120_000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	aErr, oErr := res.PredictionError()
	b.ReportMetric(aErr, "pred_err_analytic")
	b.ReportMetric(oErr, "pred_err_online")
	b.ReportMetric(res.AnalyticActual.Mean, "A_analytic_choice")
	b.ReportMetric(res.OnlineActual.Mean, "A_online_choice")
}

// BenchmarkVoteOptimization exercises the reference-[7] companion problem:
// joint vote and quorum optimization on a small asymmetric topology.
func BenchmarkVoteOptimization(b *testing.B) {
	g := graphStar6()
	cfg := votes.Config{P: 0.9, R: 0.7, Alpha: 0.5, MaxVotesPerSite: 3}
	var uni, hc votes.Evaluation
	var err error
	for i := 0; i < b.N; i++ {
		uni, err = votes.Uniform(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		hc, err = votes.HillClimb(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(uni.Availability, "A_uniform_votes")
	b.ReportMetric(hc.Availability, "A_optimized_votes")
}

// BenchmarkDirectMeasurement times the §5.2 batched availability study at
// reduced batch size (the paper's full 1M-access batches are available via
// sim.PaperStudy).
func BenchmarkDirectMeasurement(b *testing.B) {
	g := topo.Paper(2)
	a := quorum.Assignment{QR: 28, QW: 74}
	var meas sim.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		meas, err = sim.MeasureAvailability(g, nil, sim.PaperParams(), a, 0.75, sim.StudyConfig{
			Warmup: 5_000, BatchAccesses: 40_000,
			MinBatches: 3, MaxBatches: 6, CIHalfWidth: 0.01, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meas.Overall.Mean, "ACC")
	b.ReportMetric(meas.Write.Mean, "write_ACC")
}
