package quorumkit_test

import (
	"fmt"

	"quorumkit"
)

// The package-level example: compute the optimal quorum assignment for a
// fully-connected network from its closed-form component-size density.
func Example() {
	f := quorumkit.CompleteDensity(101, 0.96, 0.96)
	m, err := quorumkit.ModelFromDensity(f)
	if err != nil {
		panic(err)
	}
	res := m.Optimize(0.75) // 75% of accesses are reads
	fmt.Printf("%v A=%.2f\n", res.Assignment, res.Availability)
	// Output: (q_r=29, q_w=73) A=0.96
}

// Evaluating named fixed policies against the optimizer's choice.
func ExampleModel_AvailabilityFor() {
	f := quorumkit.RingDensity(101, 0.96, 0.96)
	m, err := quorumkit.ModelFromDensity(f)
	if err != nil {
		panic(err)
	}
	const alpha = 0.75
	fmt.Printf("majority: %.3f\n", m.AvailabilityFor(alpha, quorumkit.Majority(101)))
	fmt.Printf("ROWA:     %.3f\n", m.AvailabilityFor(alpha, quorumkit.ReadOneWriteAll(101)))
	// Output:
	// majority: 0.082
	// ROWA:     0.720
}

// The §5.4 write-throughput constraint: maximize availability subject to a
// minimum write availability.
func ExampleModel_OptimizeConstrained() {
	f := quorumkit.RingDensity(101, 0.96, 0.96)
	m, err := quorumkit.ModelFromDensity(f)
	if err != nil {
		panic(err)
	}
	res, err := m.OptimizeConstrained(0.75, 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Printf("write availability at optimum: %.2f\n", m.Availability(0, res.Assignment.QR))
	// Output: write availability at optimum: 0.05
}

// The on-line estimator of §4.2: feed observed component vote totals,
// produce a model, optimize.
func ExampleEstimator() {
	est := quorumkit.NewEstimator(5, 5)
	// Site 0 mostly sees the full component, occasionally a fragment.
	for i := 0; i < 90; i++ {
		for s := 0; s < 5; s++ {
			est.Observe(s, 5)
		}
	}
	for i := 0; i < 10; i++ {
		for s := 0; s < 5; s++ {
			est.Observe(s, 2)
		}
	}
	m, err := est.Model(nil, nil)
	if err != nil {
		panic(err)
	}
	res := m.Optimize(0.5)
	fmt.Println(res.Assignment)
	// Output: (q_r=1, q_w=5)
}

// A replicated object surviving a partition under quorum consensus, then
// changing its quorum assignment through the QR protocol.
func ExampleObject() {
	g := quorumkit.Ring(5)
	st := quorumkit.NewNetworkState(g, nil)
	obj, err := quorumkit.NewObject(st, quorumkit.Majority(5))
	if err != nil {
		panic(err)
	}
	obj.Write(0, 42)

	st.FailSite(3) // 4 of 5 sites remain: reads and writes still succeed
	if v, _, ok := obj.Read(1); ok {
		fmt.Println("read:", v)
	}

	// Reassign to read-one/write-all inside the write-quorum component.
	if err := obj.Reassign(0, quorumkit.ReadOneWriteAll(5)); err != nil {
		panic(err)
	}
	a, version, _ := obj.EffectiveAssignment(0)
	fmt.Printf("now %v at version %d\n", a, version)
	// Output:
	// read: 42
	// now (q_r=1, q_w=5) at version 2
}
