# Verification tiers for quorumkit. `make check` is the gate a change must
# pass before it lands: vet, build, the full test suite, the race detector
# over the concurrent runtime and the simulator, and the observability
# coverage gate.

GO ?= go

.PHONY: check vet build test race cover-obs fuzz chaos soak bench bench-robustness bench-obs

check: vet build test race cover-obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The observability substrate must stay near-fully covered: it is the one
# layer whose bugs silently corrupt what every harness asserts on.
cover-obs:
	$(GO) test -coverprofile=/tmp/obs.cover ./internal/obs/ >/dev/null
	@$(GO) tool cover -func=/tmp/obs.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/obs coverage: %s (gate: 90%%)\n", $$3; \
		if (pct < 90) { print "FAIL: internal/obs coverage below 90%"; exit 1 } }'

# Short continuous fuzz of the wire codec (the committed corpus always
# replays as part of `make test`).
fuzz:
	$(GO) test ./internal/cluster/ -run FuzzUnmarshalPayload -fuzz FuzzUnmarshalPayload -fuzztime 30s

# Seeded fault-injection sweep over every mix on both runtimes.
chaos:
	$(GO) run ./cmd/quorumsim -chaos -chaosmix all -ops 5000 -seed 1
	$(GO) run ./cmd/quorumsim -chaos -chaosmix all -ops 5000 -seed 1 -async

# Churn soak: self-healing daemon on vs off on identical schedules, both
# runtimes, asserting 1SR + convergence + the availability win.
soak:
	$(GO) run ./cmd/quorumsim -churn -seeds 3 -soakops 4000 -seed 1

bench:
	$(GO) test -bench=. -benchmem

# Regenerate the committed robustness benchmark snapshot.
bench-robustness:
	$(GO) run ./cmd/quorumsim -benchjson BENCH_robustness.json -seed 1

# Regenerate the committed observability overhead snapshot (asserts the
# no-op path stays effectively free).
bench-obs:
	$(GO) run ./cmd/quorumsim -benchobs BENCH_obs.json -seed 1
