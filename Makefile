# Verification tiers for quorumkit. `make check` is the gate a change must
# pass before it lands: vet, build, the full test suite, and the race
# detector over the concurrent runtime and the simulator.

GO ?= go

.PHONY: check vet build test race fuzz chaos bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/cluster/ ./internal/sim/

# Short continuous fuzz of the wire codec (the committed corpus always
# replays as part of `make test`).
fuzz:
	$(GO) test ./internal/cluster/ -run FuzzUnmarshalPayload -fuzz FuzzUnmarshalPayload -fuzztime 30s

# Seeded fault-injection sweep over every mix on both runtimes.
chaos:
	$(GO) run ./cmd/quorumsim -chaos -chaosmix all -ops 5000 -seed 1
	$(GO) run ./cmd/quorumsim -chaos -chaosmix all -ops 5000 -seed 1 -async

bench:
	$(GO) test -bench=. -benchmem
