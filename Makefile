# Verification tiers for quorumkit. `make check` is the gate a change must
# pass before it lands: vet, build, the full test suite, and the race
# detector over the concurrent runtime and the simulator.

GO ?= go

.PHONY: check vet build test race fuzz chaos soak bench bench-robustness

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short continuous fuzz of the wire codec (the committed corpus always
# replays as part of `make test`).
fuzz:
	$(GO) test ./internal/cluster/ -run FuzzUnmarshalPayload -fuzz FuzzUnmarshalPayload -fuzztime 30s

# Seeded fault-injection sweep over every mix on both runtimes.
chaos:
	$(GO) run ./cmd/quorumsim -chaos -chaosmix all -ops 5000 -seed 1
	$(GO) run ./cmd/quorumsim -chaos -chaosmix all -ops 5000 -seed 1 -async

# Churn soak: self-healing daemon on vs off on identical schedules, both
# runtimes, asserting 1SR + convergence + the availability win.
soak:
	$(GO) run ./cmd/quorumsim -churn -seeds 3 -soakops 4000 -seed 1

bench:
	$(GO) test -bench=. -benchmem

# Regenerate the committed robustness benchmark snapshot.
bench-robustness:
	$(GO) run ./cmd/quorumsim -benchjson BENCH_robustness.json -seed 1
