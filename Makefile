# Verification tiers for quorumkit. `make check` is the gate a change must
# pass before it lands: vet, build, the full test suite, the race detector
# over the concurrent runtime and the simulator, and the observability
# coverage gate.

GO ?= go

.PHONY: check vet build test race cover-obs cover-store cover-sim cover-workload cover-faults cover-strategy cover-votes fuzz chaos diskchaos soak adversary strategy-chaos grayfail hedge weights bench bench-robustness bench-obs bench-store bench-core bench-core-update bench-adversary bench-adversary-update bench-gray bench-gray-update bench-strategy bench-strategy-update bench-strategy-adversity bench-strategy-adversity-update bench-weights bench-weights-update strategy study

check: vet build test race cover-obs cover-store cover-sim cover-workload cover-faults cover-strategy cover-votes bench-strategy-adversity

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The observability substrate must stay near-fully covered: it is the one
# layer whose bugs silently corrupt what every harness asserts on.
cover-obs:
	$(GO) test -coverprofile=/tmp/obs.cover ./internal/obs/ >/dev/null
	@$(GO) tool cover -func=/tmp/obs.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/obs coverage: %s (gate: 90%%)\n", $$3; \
		if (pct < 90) { print "FAIL: internal/obs coverage below 90%"; exit 1 } }'

# The storage engine is the crash-safety bedrock: recovery correctness is
# exactly what the chaos harnesses assume, so it stays near-fully covered.
cover-store:
	$(GO) test -coverprofile=/tmp/store.cover ./internal/store/ >/dev/null
	@$(GO) tool cover -func=/tmp/store.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/store coverage: %s (gate: 90%%)\n", $$3; \
		if (pct < 90) { print "FAIL: internal/store coverage below 90%"; exit 1 } }'

# The simulator is the measurement instrument every study result rests on:
# the large-N engine's equivalence proofs (sweep vs per-assignment, reset
# vs fresh, parallel vs serial) only bind if the paths they compare are
# exercised, so the package stays near-fully covered.
cover-sim:
	$(GO) test -coverprofile=/tmp/sim.cover ./internal/sim/ >/dev/null
	@$(GO) tool cover -func=/tmp/sim.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/sim coverage: %s (gate: 90%%)\n", $$3; \
		if (pct < 90) { print "FAIL: internal/sim coverage below 90%"; exit 1 } }'

# The workload generators parameterize every adversarial scenario; a
# mis-shaped α(t) or rate curve silently invalidates the regret numbers,
# so the package stays near-fully covered.
cover-workload:
	$(GO) test -coverprofile=/tmp/workload.cover ./internal/workload/ >/dev/null
	@$(GO) tool cover -func=/tmp/workload.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/workload coverage: %s (gate: 90%%)\n", $$3; \
		if (pct < 90) { print "FAIL: internal/workload coverage below 90%"; exit 1 } }'

# The fault schedules are the stimulus side of every robustness claim: a
# latency rule that fires on the wrong link or step makes the gray-failure
# verdicts meaningless, so the package stays near-fully covered.
cover-faults:
	$(GO) test -coverprofile=/tmp/faults.cover ./internal/faults/ >/dev/null
	@$(GO) tool cover -func=/tmp/faults.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/faults coverage: %s (gate: 90%%)\n", $$3; \
		if (pct < 90) { print "FAIL: internal/faults coverage below 90%"; exit 1 } }'

# The strategy optimizer certifies its own answers, but a certificate only
# binds the paths that run: the simplex edge cases, pricing, and the
# column-generation rebuild logic stay near-fully covered.
cover-strategy:
	$(GO) test -coverprofile=/tmp/strategy.cover ./internal/strategy/ >/dev/null
	@$(GO) tool cover -func=/tmp/strategy.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/strategy coverage: %s (gate: 90%%)\n", $$3; \
		if (pct < 90) { print "FAIL: internal/strategy coverage below 90%"; exit 1 } }'

# The vote-weight search accepts nothing without a pigeonhole intersection
# certificate, and its oracle tests (brute-force certifier, exhaustive
# optimum, seed-engine equivalence) only bind the paths they exercise, so
# the package stays near-fully covered.
cover-votes:
	$(GO) test -coverprofile=/tmp/votes.cover ./internal/votes/ >/dev/null
	@$(GO) tool cover -func=/tmp/votes.cover | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/votes coverage: %s (gate: 90%%)\n", $$3; \
		if (pct < 90) { print "FAIL: internal/votes coverage below 90%"; exit 1 } }'

# Short continuous fuzz of the wire codec (the committed corpus always
# replays as part of `make test`).
fuzz:
	$(GO) test ./internal/cluster/ -run FuzzUnmarshalPayload -fuzz FuzzUnmarshalPayload -fuzztime 30s

# Short continuous fuzz of the store record decoder against arbitrary log
# damage (the committed corpus replays in `make test`).
fuzz-store:
	$(GO) test ./internal/store/ -run FuzzFoldLog -fuzz FuzzFoldLog -fuzztime 30s

# Short continuous fuzz of the simplex solver: random LPs must always yield
# a verifiable certificate (optimality, Farkas, or unbounded ray).
fuzz-simplex:
	$(GO) test ./internal/strategy/ -run FuzzSimplex -fuzz FuzzSimplex -fuzztime 30s

# Short continuous fuzz of the strategy decoder: a corrupted serialized
# strategy must always be rejected with a typed DecodeError, never armed.
fuzz-strategy:
	$(GO) test ./internal/strategy/ -run FuzzStrategyDecode -fuzz FuzzStrategyDecode -fuzztime 30s

# Seeded fault-injection sweep over every mix on both runtimes.
chaos:
	$(GO) run ./cmd/quorumsim -chaos -chaosmix all -ops 5000 -seed 1
	$(GO) run ./cmd/quorumsim -chaos -chaosmix all -ops 5000 -seed 1 -async

# Disk-fault sweep: crash-bearing message mix with every disk damage mix
# layered under it, on both runtimes.
diskchaos:
	$(GO) run ./cmd/quorumsim -diskchaos -diskmix all -ops 3000 -seed 1
	$(GO) run ./cmd/quorumsim -diskchaos -diskmix all -ops 3000 -seed 1 -async

# Churn soak: self-healing daemon on vs off on identical schedules, both
# runtimes, asserting 1SR + convergence + the availability win.
soak:
	$(GO) run ./cmd/quorumsim -churn -seeds 3 -soakops 4000 -seed 1

# Adversarial scenario suite: diurnal drift, flash crowds, and partition
# storms replayed daemon-on vs daemon-off, scored against the epoch oracle
# and gated on the committed regret baseline.
adversary:
	$(GO) run ./cmd/quorumsim -adversary /tmp/BENCH_adversary.json -adversarybase BENCH_adversary.json -seed 1

# Strategy-adversity suite: the same scenarios with a certified randomized
# strategy installed at boot, frozen vs daemon re-solving on identical
# stimuli. Fails on any 1SR or minority-write verdict, a scenario whose
# strategy never served, a missing certified re-solve, or re-solve regret
# not strictly below frozen regret.
strategy-chaos:
	$(GO) run ./cmd/quorumsim -strategychaos /tmp/BENCH_strategy_adversity.json -seed 1

bench:
	$(GO) test -bench=. -benchmem

# Regenerate the committed robustness benchmark snapshot.
bench-robustness:
	$(GO) run ./cmd/quorumsim -benchjson BENCH_robustness.json -seed 1

# Regenerate the committed observability overhead snapshot (asserts the
# no-op path stays effectively free).
bench-obs:
	$(GO) run ./cmd/quorumsim -benchobs BENCH_obs.json -seed 1

# Regenerate the committed storage-engine overhead snapshot (asserts one
# log append stays under 5% of a seed write op; whole-path overhead is
# reported for context).
bench-store:
	$(GO) run ./cmd/quorumsim -benchstore BENCH_store.json -seed 1

# Core-kernel regression gate: re-measure the study engine's hot kernels
# and fail on any heap allocation in steady-state access, a family-sweep
# speedup below 5×, a sweep that is not bit-identical to the
# per-assignment reference, or a calibrated slowdown of more than 10%
# against the committed BENCH_core.json.
bench-core:
	$(GO) run ./cmd/quorumsim -benchcore /tmp/BENCH_core.json -benchbase BENCH_core.json -seed 1

# Regenerate the committed core-kernel baseline (run on an idle machine).
bench-core-update:
	$(GO) run ./cmd/quorumsim -benchcore BENCH_core.json -seed 1

# Adversary regret gate: replay the scenario suite and fail on any safety
# or regret verdict, or on daemon-on regret/op drifting above the
# committed BENCH_adversary.json baseline.
bench-adversary:
	$(GO) run ./cmd/quorumsim -adversary /tmp/BENCH_adversary.json -adversarybase BENCH_adversary.json -seed 1

# Regenerate the committed adversary regret baseline.
bench-adversary-update:
	$(GO) run ./cmd/quorumsim -adversary BENCH_adversary.json -seed 1

# Strategy-adversity regret gate: replay the suite with strategies
# installed and fail on any safety or re-solve verdict, or on re-solve
# regret/op drifting above the committed BENCH_strategy_adversity.json.
bench-strategy-adversity:
	$(GO) run ./cmd/quorumsim -strategychaos /tmp/BENCH_strategy_adversity.json -strategyadversitybase BENCH_strategy_adversity.json -seed 1

# Regenerate the committed strategy-adversity baseline.
bench-strategy-adversity-update:
	$(GO) run ./cmd/quorumsim -strategychaos BENCH_strategy_adversity.json -seed 1

# Gray-failure suite: slow replicas, gray storms, and the assignment-
# adaptive adversary, replayed daemon-off / miss-count / φ-accrual on
# identical seeded stimuli. Fails on any safety verdict, a broken
# φ < miss-count < off regret ordering, an inexact regret decomposition,
# or a hedged-read p99 win below 20%.
grayfail:
	$(GO) run ./cmd/quorumsim -grayfail /tmp/BENCH_gray.json -benchgray BENCH_gray.json -seed 1

# Hedged-read demo: the slow-replica scenario unhedged vs hedged.
hedge:
	$(GO) run ./cmd/quorumsim -hedge -seed 1

# Gray-failure gate against the committed BENCH_gray.json baseline.
bench-gray:
	$(GO) run ./cmd/quorumsim -grayfail /tmp/BENCH_gray.json -benchgray BENCH_gray.json -seed 1

# Regenerate the committed gray-failure baseline.
bench-gray-update:
	$(GO) run ./cmd/quorumsim -grayfail BENCH_gray.json -seed 1

# Weighted-vote annealing demo: a 50-site star scored against the frozen
# scenario sample, plus the end-to-end crosscheck of the scenario engine's
# prediction against the discrete-event simulator.
weights:
	$(GO) run ./cmd/voteopt -net star -n 50 -search anneal -p 0.9 -r 0.7 \
		-alpha 0.5 -max 4 -scenarios 2000 -seed 1
	$(GO) run ./cmd/quorumsim -weightcheck -weightsites 9 -alpha 0.75 -seed 1

# Weighted-vote search gate: re-run the annealing benchmark suite and fail
# on an uncertified accept, a same-seed rerun that is not bit-identical, a
# weighted value below the uniform baseline, or drift beyond 1e-9 relative
# from the committed BENCH_weights.json.
bench-weights:
	$(GO) run ./cmd/voteopt -benchweights /tmp/BENCH_weights.json \
		-weightsbase BENCH_weights.json -seed 1

# Regenerate the committed weighted-vote baseline.
bench-weights-update:
	$(GO) run ./cmd/voteopt -benchweights BENCH_weights.json -seed 1

# Solve the case-study system for a certified capacity-optimal randomized
# strategy and print it (see also `quorumopt -strategy -objective latency`).
strategy:
	$(GO) run ./cmd/quorumopt -strategy

# Strategy regression gate: re-solve the suite and fail on an invalid
# certificate, a randomization gain that no longer strictly beats the best
# deterministic assignment, sim-vs-LP capacity disagreement over 2%, a
# large-N bound gap over target, or a calibrated solve-time regression
# >50% against the committed BENCH_strategy.json.
bench-strategy:
	$(GO) run ./cmd/quorumsim -benchstrategy /tmp/BENCH_strategy.json -strategybase BENCH_strategy.json -seed 1

# Regenerate the committed strategy baseline (run on an idle machine).
bench-strategy-update:
	$(GO) run ./cmd/quorumsim -benchstrategy BENCH_strategy.json -seed 1

# Large-N study smoke: a reduced chords × α grid at paper scale.
study:
	$(GO) run ./cmd/quorumsim -study -sites 301 -chords 0,4 -alphas 0.75 \
		-warmup 1000 -batch 20000 -minbatches 3 -maxbatches 5 -ci 0.01 -parallel 4
