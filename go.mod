module quorumkit

go 1.22
