// Command quorumopt computes optimal quorum assignments analytically from
// the closed-form component-size densities of §4.2 (ring, fully-connected,
// single-bus), for any network size, reliability, read fraction, and
// optional minimum write throughput.
//
// Usage:
//
//	quorumopt -net ring -n 101 -p 0.96 -r 0.96 -alpha 0.75
//	quorumopt -net complete -n 101 -alpha 0.75 -minwrite 0.2
//	quorumopt -net bus-kills -n 51 -curve
package main

import (
	"flag"
	"fmt"
	"os"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
	"quorumkit/internal/experiments"
)

func main() {
	var (
		net      = flag.String("net", "complete", "topology: ring | complete | bus-kills | bus-indep")
		n        = flag.Int("n", 101, "number of sites (one copy, one vote each)")
		p        = flag.Float64("p", 0.96, "site reliability")
		r        = flag.Float64("r", 0.96, "link (or bus) reliability")
		alpha    = flag.Float64("alpha", 0.75, "fraction of accesses that are reads")
		minWrite = flag.Float64("minwrite", 0, "minimum write availability (0 = unconstrained)")
		curve    = flag.Bool("curve", false, "print the full A(α, q_r) curve")
		sweep    = flag.Bool("sweep", false, "emit CSV of A(α, q_r) over a grid of α (for plotting)")
		omega    = flag.Bool("omega", false, "trace the §5.4 weighted-objective path over ω")

		strat     = flag.Bool("strategy", false, "solve for an optimal randomized quorum strategy (capacity/latency LP, certified) instead of a single assignment")
		objective = flag.String("objective", "capacity", "strategy: capacity | resilient | latency")
		stratN    = flag.Int("stratn", 0, "strategy: sites in a seeded heterogeneous system (0 = the built-in case study)")
		resilF    = flag.Int("f", 1, "strategy: tolerated site failures for -objective resilient")
		loadLimit = flag.Float64("loadlimit", 0, "strategy: per-site load ceiling for -objective latency (0 = case-study limit)")
		frs       = flag.String("frs", "", "strategy: read-fraction distribution as fr:weight pairs, e.g. 0.7:100,0.5:50 (empty = case-study distribution)")
		gap       = flag.Float64("gap", 0, "strategy: stop column generation at this certified bound gap (0 = solve to priced optimality)")
		seed      = flag.Uint64("seed", 7, "strategy: seed for the -stratn heterogeneous system")
		asJSON    = flag.Bool("json", false, "strategy: print the canonical strategy as JSON")
	)
	flag.Parse()

	if *strat {
		os.Exit(runStrategy(*objective, *stratN, *resilF, *loadLimit, *frs, *gap, *seed, *asJSON))
	}

	var f dist.PMF
	switch *net {
	case "ring":
		f = dist.Ring(*n, *p, *r)
	case "complete":
		f = dist.Complete(*n, *p, *r)
	case "bus-kills":
		f = dist.BusKillsSites(*n, *p, *r)
	case "bus-indep":
		f = dist.BusIndependentSites(*n, *p, *r)
	default:
		fmt.Fprintf(os.Stderr, "unknown -net %q\n", *net)
		os.Exit(2)
	}

	m, err := core.ModelFromSingleDensity(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *sweep {
		// CSV: one row per q_r, one column per α — ready for any plotter.
		alphas := []float64{0, 0.25, 0.5, 0.75, 1}
		fmt.Print("q_r")
		for _, a := range alphas {
			fmt.Printf(",alpha=%.2f", a)
		}
		fmt.Println()
		for qr := 1; qr <= m.MaxReadQuorum(); qr++ {
			fmt.Print(qr)
			for _, a := range alphas {
				fmt.Printf(",%.6f", m.Availability(a, qr))
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("network: %s, n=%d, p=%g, r=%g, α=%g\n", *net, *n, *p, *r, *alpha)
	if *curve {
		fmt.Printf("%-6s %-10s %-10s %-10s\n", "q_r", "A(α,q_r)", "read A", "write A")
		for qr := 1; qr <= m.MaxReadQuorum(); qr++ {
			fmt.Printf("%-6d %-10.4f %-10.4f %-10.4f\n",
				qr, m.Availability(*alpha, qr), m.ReadAvail(qr), m.WriteAvailForReadQuorum(qr))
		}
	}

	if *minWrite > 0 {
		res, err := m.OptimizeConstrained(*alpha, *minWrite)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("optimal with A_w ≥ %.2f: %v  A = %.4f (write A = %.4f)\n",
			*minWrite, res.Assignment, res.Availability,
			m.Availability(0, res.Assignment.QR))
	} else {
		res := m.Optimize(*alpha)
		fmt.Printf("optimal: %v  A = %.4f (read A = %.4f, write A = %.4f)\n",
			res.Assignment, res.Availability,
			m.ReadAvail(res.Assignment.QR), m.WriteAvailForReadQuorum(res.Assignment.QR))
	}

	if *omega {
		fmt.Printf("\n§5.4 weighted objective: optimum as the write weight ω grows\n")
		fmt.Printf("%-8s %-18s %-10s %-10s\n", "ω", "assignment", "read A", "write A")
		for _, row := range experiments.OmegaSweep(m, *alpha,
			[]float64{0, 0.25, 0.5, 1, 2, 4, 8, 16, 64}) {
			fmt.Printf("%-8g %-18v %-10.4f %-10.4f\n",
				row.Omega, row.Assignment, row.ReadAvail, row.WriteAvail)
		}
	}

	// Reference points the paper discusses.
	maj := m.MaxReadQuorum()
	fmt.Printf("majority  (q_r=%d): A = %.4f\n", maj, m.Availability(*alpha, maj))
	fmt.Printf("read-one  (q_r=1):  A = %.4f\n", m.Availability(*alpha, 1))
}
