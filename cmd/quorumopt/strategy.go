package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"quorumkit/internal/rng"
	"quorumkit/internal/strategy"
)

// runStrategy is the `quorumopt -strategy` mode: solve for an optimal
// randomized quorum strategy — capacity, f-resilient capacity, or expected
// latency under a load limit — over the built-in case-study system or a
// seeded heterogeneous system of -n sites, certify the result, and print
// the strategy (optionally as canonical JSON).
func runStrategy(objective string, n int, f int, loadLimit float64, frSpec string,
	gap float64, seed uint64, asJSON bool) int {
	sys, d, err := strategySystem(n, frSpec, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts := strategy.Options{TargetGap: gap}

	var res *strategy.Result
	start := time.Now()
	switch objective {
	case "capacity":
		res, err = strategy.OptimizeCapacity(sys, d, opts)
	case "resilient":
		res, err = strategy.OptimizeResilientCapacity(sys, d, f, opts)
	case "latency":
		if loadLimit <= 0 {
			loadLimit = strategy.CaseStudyLoadLimit()
		}
		res, err = strategy.OptimizeLatency(sys, d, loadLimit, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown -objective %q (capacity | resilient | latency)\n", objective)
		return 2
	}
	elapsed := time.Since(start)
	if err != nil {
		return strategyFail(objective, "solve", err)
	}
	if cerr := res.Certify(1e-6); cerr != nil {
		return strategyFail(objective, "certificate", cerr)
	}

	if asJSON {
		out, err := json.MarshalIndent(res.Strategy.Canonical(1e-12), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(out))
		return 0
	}

	fmt.Printf("objective: %s, %d sites, T=%d, q_r=%d, q_w=%d, E[f_r]=%.3f\n",
		objective, sys.N(), sys.T(), sys.QR, sys.QW, d.Mean())
	switch objective {
	case "latency":
		fmt.Printf("expected latency: %.4f  (load limit %.3g, capacity %.1f)\n",
			res.Value, loadLimit, res.Capacity)
	default:
		fmt.Printf("capacity: %.3f  (expected bottleneck load %.6g per access)\n",
			res.Capacity, res.Value)
	}
	fmt.Printf("certificate: valid (%d pivots)", res.Sol.Pivots)
	if res.PoolComplete {
		fmt.Printf("; pools enumerated completely (%d read, %d write quorums)\n",
			len(res.ReadPool), len(res.WritePool))
	} else {
		fmt.Printf("; column generation: %d rounds, %d columns, priced=%v, bound gap %.2g\n",
			res.Rounds, res.Generated, res.Priced, (res.Value-res.Bound)/res.Value)
	}
	fmt.Printf("solve time: %v\n", elapsed.Round(time.Millisecond))

	printSide := func(name string, pool []strategy.Quorum, probs []float64) {
		fmt.Printf("%s strategy (%d quorums with mass):\n", name, len(pool))
		for i, q := range pool {
			fmt.Printf("  p=%-8.4f %v\n", probs[i], q)
		}
	}
	st := res.Strategy.Canonical(1e-9)
	printSide("read", st.ReadQuorums, st.ReadProbs)
	printSide("write", st.WriteQuorums, st.WriteProbs)

	if objective == "capacity" && sys.N() <= 12 {
		_, detCap, derr := strategy.BestDeterministic(sys, d, strategy.Options{})
		if derr == nil {
			fmt.Printf("best deterministic assignment: capacity %.3f (randomization gain %.2f×)\n",
				detCap, res.Capacity/detCap)
		}
	}
	return 0
}

// strategyError is the structured failure object `-strategy` emits on
// stderr when the LP cannot produce a certified strategy, so scripted
// callers can branch on `.infeasible` instead of scraping prose.
type strategyError struct {
	Error      string `json:"error"`
	Objective  string `json:"objective"`
	Stage      string `json:"stage"` // "solve" | "certificate"
	Infeasible bool   `json:"infeasible"`
}

// strategyFail reports a solve or certification failure as one structured
// JSON object on stderr and returns the non-zero exit status. Infeasibility
// — the load limit unreachable, or no f-resilient quorum existing — is
// distinguished from numerical or certification failures.
func strategyFail(objective, stage string, err error) int {
	infeasible := errors.Is(err, strategy.ErrLoadLimitInfeasible) ||
		errors.Is(err, strategy.ErrResilienceInfeasible)
	out, jerr := json.Marshal(strategyError{
		Error: err.Error(), Objective: objective,
		Stage: stage, Infeasible: infeasible,
	})
	if jerr != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintln(os.Stderr, string(out))
	return 1
}

// strategySystem resolves the system and read-fraction distribution: the
// built-in case study for n = 0, else a seeded heterogeneous majority
// system of n sites.
func strategySystem(n int, frSpec string, seed uint64) (strategy.System, strategy.FrDist, error) {
	var sys strategy.System
	var d strategy.FrDist
	var err error
	if n == 0 {
		sys, d = strategy.CaseStudySystem(), strategy.CaseStudyFrDist()
	} else {
		if n < 3 {
			return sys, d, fmt.Errorf("-n %d: need at least 3 sites", n)
		}
		sys = heteroSystem(n, seed)
		d, err = strategy.NewFrDist(map[float64]float64{0.8: 2, 0.5: 1})
		if err != nil {
			return sys, d, err
		}
	}
	if frSpec != "" {
		d, err = parseFrDist(frSpec)
		if err != nil {
			return sys, d, err
		}
	}
	return sys, d, nil
}

// heteroSystem draws an n-site majority system with heterogeneous
// capacities and latencies, deterministic in the seed. Mirrors the study
// system used by `quorumsim -benchstrategy`.
func heteroSystem(n int, seed uint64) strategy.System {
	src := rng.New(seed)
	sys := strategy.System{
		Votes: make([]int, n), QR: n/2 + 1, QW: n/2 + 1,
		ReadCap:  make([]float64, n),
		WriteCap: make([]float64, n),
		Latency:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sys.Votes[i] = 1
		sys.ReadCap[i] = 1000 + 3000*src.Float64()
		sys.WriteCap[i] = 500 + 1500*src.Float64()
		sys.Latency[i] = 1 + 9*src.Float64()
	}
	return sys
}

// parseFrDist parses "0.7:100,0.5:50"-style read-fraction distributions.
func parseFrDist(spec string) (strategy.FrDist, error) {
	w := map[float64]float64{}
	for _, part := range strings.Split(spec, ",") {
		fw := strings.SplitN(strings.TrimSpace(part), ":", 2)
		fr, err := strconv.ParseFloat(fw[0], 64)
		if err != nil {
			return strategy.FrDist{}, fmt.Errorf("bad -frs atom %q: %v", part, err)
		}
		weight := 1.0
		if len(fw) == 2 {
			weight, err = strconv.ParseFloat(fw[1], 64)
			if err != nil {
				return strategy.FrDist{}, fmt.Errorf("bad -frs weight %q: %v", part, err)
			}
		}
		w[fr] += weight
	}
	return strategy.NewFrDist(w)
}
