package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"quorumkit/internal/cluster"
	"quorumkit/internal/faults"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/workload"
)

// Gray-failure mode: replay scenarios where the network degrades without
// dying — heavy-tailed latency spikes, flapping slow sites, and an
// adaptive adversary that targets whatever the installed assignment
// depends on — and compare three postures on the identical seeded
// stimulus: no daemon, the miss-count detector (which misreads slow as
// dead), and the φ-accrual detector (which does not). The regret harness
// also decomposes each run's regret into detection-latency, policy-slack,
// and residual buckets, and the slow-replica scenario gates the hedged
// read path's tail-latency win.

// grayScenario names one gray configuration. Regret scenarios run the
// off/miss/φ triple; the hedge scenario runs the unhedged/hedged pair.
type grayScenario struct {
	name  string
	hedge bool // hedging pair instead of detector triple
	cfg   cluster.AdversaryConfig
}

// grayScenarios builds the suite. Each config is pure in (seed, steps).
func grayScenarios(seed uint64, steps int) []grayScenario {
	const sites = 9
	links := graph.Ring(sites).M()

	// slow-replica: no churn, no cuts, no daemon — pure gray slowness.
	// One site pair's link turns slow at a time, rotating around the
	// ring faster than the per-site latency estimators adapt: right
	// after each rotation the predicted-fastest read quorum still
	// contains the now-slow replica, and backup probes cover exactly
	// that lag. (Slowing a whole site would also slow every read the
	// site itself coordinates — a floor no hedge can beat, since all
	// its spares are equally slow.) A mild bounded heavy tail adds
	// per-link jitter on top. The hedged run must shrink the read tail
	// by at least 20% at p99.
	rotating := faults.NewLatencySchedule().
		SetHeavyTail(seed^0x9e37, 0.05, 6, 12)
	const rotateEvery = 60
	for w := 0; w*rotateEvery < steps; w++ {
		start := int64(w * rotateEvery)
		end := start + rotateEvery
		a, b := w%sites, (w+3)%sites
		rotating.AddLinkSlow(start, end, []int{a}, []int{b}, 25, 0)
		rotating.AddLinkSlow(start, end, []int{b}, []int{a}, 25, 0)
	}
	slow := cluster.AdversaryConfig{
		Seed: seed, Steps: steps, Sites: sites, Links: links,
		Workload:      workload.Constant(0.9),
		Health:        soakHealth(0.9),
		RecordLatency: true,
		HedgeK:        1.5,
		Latency:       rotating,
	}

	// gray-storm: real faults and gray slowness at once. Site/link churn
	// and a partition storm give the daemon genuine work; a gray storm
	// layered on top feeds the miss-count detector late acks to misread.
	stormCfg := cluster.AdversaryConfig{
		Seed: seed, Steps: steps, Sites: sites, Links: links,
		Workload: workload.Constant(0.75),
		Churn:    soakChurn(),
		Health:   soakHealth(0.75),
		Partitions: faults.Storm(seed, faults.StormConfig{
			Sites: sites, Regions: advRegions(),
			Start: 0, End: int64(steps * 3 / 4),
			MeanDuration: 40, MeanGap: 70, OneWayFraction: 0.25,
		}),
		Latency: faults.GrayStorm(seed, faults.GrayStormConfig{
			Sites: sites, Start: 0, End: int64(steps * 3 / 4),
			MeanDuration: 30, MeanGap: 50,
			SlowMin: 8, SlowMax: 25,
			RampFraction: 0.25, FlapFraction: 0.25,
		}),
	}

	// adaptive-qr: the adversary reads the installed assignment and the
	// suspicion set each step and cuts the top-vote unsuspected sites —
	// the ones the read quorum leans on — every move. The gray slowness
	// comes from an independent background storm, deliberately
	// uncorrelated with the cuts: were the adversary itself to slow its
	// next victims, a miss-count detector's false suspicions would
	// telegraph the coming cut and pre-degrade the targets, rewarding
	// exactly the misreading this suite exists to punish.
	adaptive := cluster.AdversaryConfig{
		Seed: seed, Steps: steps, Sites: sites, Links: links,
		Workload: workload.Constant(0.75),
		Churn: faults.ChurnConfig{
			SiteMTBF: 500, SiteMTTR: 25,
			LinkMTBF: 120, LinkMTTR: 25,
		},
		Health: soakHealth(0.75),
		Adaptive: &faults.QRCritical{
			Every: 20, Duration: 15, Slow: 0, Top: 2, CutEvery: 1,
		},
		Latency: faults.GrayStorm(seed^0xad, faults.GrayStormConfig{
			Sites: sites, Start: 0, End: int64(steps),
			MeanDuration: 30, MeanGap: 40,
			SlowMin: 8, SlowMax: 10,
			RampFraction: 0.25, FlapFraction: 0.25,
		}),
	}

	return []grayScenario{
		{"slow-replica", true, slow},
		{"gray-storm", false, stormCfg},
		{"adaptive-qr", false, adaptive},
	}
}

// grayResult is one run's entry in BENCH_gray.json.
type grayResult struct {
	Scenario       string  `json:"scenario"`
	Mode           string  `json:"mode"` // off | miss | phi | unhedged | hedged
	Ops            int     `json:"ops"`
	GrantRate      float64 `json:"grant_rate"`
	Oracle         float64 `json:"oracle"`
	Regret         float64 `json:"regret"`
	RegretPerOp    float64 `json:"regret_per_op"`
	DetectRegret   float64 `json:"detect_regret"`
	PolicyRegret   float64 `json:"policy_regret"`
	ResidualRegret float64 `json:"residual_regret"`
	FalsePositives int64   `json:"false_positives"`
	LateAcks       int64   `json:"late_acks"`
	HedgeProbes    int64   `json:"hedge_probes"`
	HedgeWins      int64   `json:"hedge_wins"`
	ReadP50        float64 `json:"read_p50_slots"`
	ReadP99        float64 `json:"read_p99_slots"`
	MinorityWrites int     `json:"minority_writes"`
	OneSR          bool    `json:"one_sr"`
	Converged      bool    `json:"converged"`
}

type grayFile struct {
	Suite   string       `json:"suite"`
	Seed    uint64       `json:"seed"`
	Steps   int          `json:"steps"`
	Results []grayResult `json:"results"`
}

// grayRegretTolerance bounds baseline drift for φ-mode regret-per-op,
// matching the adversary gate's rationale.
const grayRegretTolerance = 0.02

// grayHedgeRatio is the required tail win: hedged p99 must be at or below
// this fraction of the unhedged p99 (a ≥20% improvement).
const grayHedgeRatio = 0.8

// percentile returns the p-quantile of the latencies (slots) by rank.
func percentile(lat []int64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := make([]int64, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return float64(s[idx])
}

// grayReplay runs one scenario config on a fresh deterministic ring.
func grayReplay(sc grayScenario, cfg cluster.AdversaryConfig, sink *obsSink) (*cluster.AdversaryRun, error) {
	g := graph.Ring(cfg.Sites)
	rt, err := cluster.New(graph.NewState(g, nil), quorum.Majority(cfg.Sites))
	if err != nil {
		return nil, err
	}
	sink.attach(rt)
	return cluster.RunAdversary(rt, graph.NewState(g, nil), cfg), nil
}

// runGrayfail replays the gray-failure suite, writes BENCH_gray.json-style
// output to path, and — when base names a committed baseline — gates
// against it. Verdicts on every run: 1SR, zero minority writes, exact
// regret decomposition. Ordering gates per regret scenario: φ-on regret <
// miss-count-on regret < daemon-off regret. Hedge gate: hedged p99 at or
// below 80% of unhedged p99. Non-zero exit on any failure.
func runGrayfail(path, base string, steps int, seed uint64, sink *obsSink) int {
	status := 0
	file := grayFile{Suite: "grayfail", Seed: seed, Steps: steps}

	record := func(sc grayScenario, mode string, run *cluster.AdversaryRun) grayResult {
		res := grayResult{
			Scenario: sc.name, Mode: mode, Ops: run.Ops,
			GrantRate: run.Availability(), Oracle: run.OracleAvailability(),
			Regret: run.Regret, RegretPerOp: run.RegretPerOp(),
			DetectRegret: run.DetectRegret, PolicyRegret: run.PolicyRegret,
			ResidualRegret: run.ResidualRegret,
			FalsePositives: run.FalsePositives, LateAcks: run.Health.LateAcks,
			HedgeProbes: run.HedgeProbes, HedgeWins: run.HedgeWins,
			ReadP50: percentile(run.ReadLatencies, 0.50),
			ReadP99: percentile(run.ReadLatencies, 0.99),
			MinorityWrites: run.MinorityWrites,
			OneSR:          run.ViolationErr == nil, Converged: run.Converged,
		}
		file.Results = append(file.Results, res)
		fmt.Printf("scenario=%-14s mode=%-8s %v\n", sc.name, mode, run)
		if len(run.ReadLatencies) > 0 {
			fmt.Printf("  reads: %d modeled, p50=%.0f p99=%.0f slots, %d hedge probes, %d wins\n",
				len(run.ReadLatencies), res.ReadP50, res.ReadP99, res.HedgeProbes, res.HedgeWins)
		}
		if run.ViolationErr != nil {
			fmt.Printf("  FAIL: one-copy serializability violated: %v\n", run.ViolationErr)
			status = 1
		}
		if run.MinorityWrites != 0 {
			fmt.Printf("  FAIL: %d writes granted from minority components\n", run.MinorityWrites)
			status = 1
		}
		if diff := math.Abs(run.DetectRegret + run.PolicyRegret + run.ResidualRegret - run.Regret); diff > 1e-9 {
			fmt.Printf("  FAIL: regret decomposition off by %g (detect %.4f + policy %.4f + residual %.4f != %.4f)\n",
				diff, run.DetectRegret, run.PolicyRegret, run.ResidualRegret, run.Regret)
			status = 1
		}
		return res
	}

	for _, sc := range grayScenarios(seed, steps) {
		if sc.hedge {
			var p99 [2]float64
			for i, hedged := range []bool{false, true} {
				cfg := sc.cfg
				cfg.Hedge = hedged
				run, err := grayReplay(sc, cfg, sink)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 2
				}
				mode := "unhedged"
				if hedged {
					mode = "hedged"
				}
				res := record(sc, mode, run)
				p99[i] = res.ReadP99
			}
			if p99[1] > p99[0]*grayHedgeRatio {
				fmt.Printf("  FAIL: %s: hedged p99 %.0f not ≤ %.0f%% of unhedged p99 %.0f\n",
					sc.name, p99[1], grayHedgeRatio*100, p99[0])
				status = 1
			} else {
				fmt.Printf("  hedge gate: p99 %.0f → %.0f slots (%.0f%% win)\n",
					p99[0], p99[1], 100*(1-p99[1]/p99[0]))
			}
			continue
		}

		// Detector triple: daemon off, miss-count on, φ on.
		modes := []struct {
			mode     string
			daemon   bool
			detector cluster.DetectorKind
		}{
			{"off", false, cluster.DetectorMissCount},
			{"miss", true, cluster.DetectorMissCount},
			{"phi", true, cluster.DetectorPhi},
		}
		regrets := make(map[string]float64, 3)
		for _, m := range modes {
			cfg := sc.cfg
			cfg.Daemon = m.daemon
			cfg.Health.Detector = m.detector
			run, err := grayReplay(sc, cfg, sink)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			record(sc, m.mode, run)
			regrets[m.mode] = run.Regret
			if m.daemon && !run.Converged {
				fmt.Printf("  FAIL: %s/%s: assignment versions diverged after healing: %v\n",
					sc.name, m.mode, run.FinalVersions)
				status = 1
			}
		}
		if !(regrets["phi"] < regrets["miss"] && regrets["miss"] < regrets["off"]) {
			fmt.Printf("  FAIL: %s: regret ordering φ(%.1f) < miss(%.1f) < off(%.1f) does not hold\n",
				sc.name, regrets["phi"], regrets["miss"], regrets["off"])
			status = 1
		} else {
			fmt.Printf("  regret gate: φ %.1f < miss %.1f < off %.1f\n",
				regrets["phi"], regrets["miss"], regrets["off"])
		}
	}

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("wrote %s (%d runs)\n", path, len(file.Results))

	if base != "" {
		if err := gateGray(file, base); err != nil {
			fmt.Fprintf(os.Stderr, "gray gate: %v\n", err)
			status = 1
		} else {
			fmt.Printf("gray gate vs %s: OK\n", base)
		}
	}
	if status == 0 {
		fmt.Println("grayfail: all verdicts OK (1SR, minority writes, decomposition, regret ordering, hedge p99)")
	}
	return status
}

// gateGray compares φ-mode regret-per-op against the committed baseline
// and re-checks the hedge ratio from the baseline's own numbers (so a
// committed baseline that no longer meets the bar fails loudly).
func gateGray(cur grayFile, basePath string) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var base grayFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	if base.Seed != cur.Seed || base.Steps != cur.Steps {
		return fmt.Errorf("baseline (seed=%d steps=%d) does not match run (seed=%d steps=%d)",
			base.Seed, base.Steps, cur.Seed, cur.Steps)
	}
	pick := func(f grayFile, scenario, mode string) (grayResult, bool) {
		for _, r := range f.Results {
			if r.Scenario == scenario && r.Mode == mode {
				return r, true
			}
		}
		return grayResult{}, false
	}
	for _, b := range base.Results {
		if b.Mode != "phi" {
			continue
		}
		c, ok := pick(cur, b.Scenario, "phi")
		if !ok {
			return fmt.Errorf("scenario %q (phi) missing from this run", b.Scenario)
		}
		if c.RegretPerOp > b.RegretPerOp+grayRegretTolerance {
			return fmt.Errorf("scenario %q: φ regret/op %.4f regressed past baseline %.4f (+%.2f allowed)",
				b.Scenario, c.RegretPerOp, b.RegretPerOp, grayRegretTolerance)
		}
	}
	bu, okU := pick(base, "slow-replica", "unhedged")
	bh, okH := pick(base, "slow-replica", "hedged")
	if !okU || !okH {
		return fmt.Errorf("baseline missing the slow-replica hedge pair")
	}
	if bh.ReadP99 > bu.ReadP99*grayHedgeRatio {
		return fmt.Errorf("baseline hedge ratio %.2f above %.2f", bh.ReadP99/bu.ReadP99, grayHedgeRatio)
	}
	return nil
}

// runHedgeDemo is the -hedge quick look: the slow-replica scenario
// unhedged then hedged, printing the read latency distribution shift.
func runHedgeDemo(steps int, seed uint64, sink *obsSink) int {
	sc := grayScenarios(seed, steps)[0]
	if !sc.hedge {
		panic("grayfail: first scenario must be the hedge scenario")
	}
	for _, hedged := range []bool{false, true} {
		cfg := sc.cfg
		cfg.Hedge = hedged
		run, err := grayReplay(sc, cfg, sink)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		mode := "unhedged"
		if hedged {
			mode = "hedged  "
		}
		fmt.Printf("%s: %5d reads  p50=%4.0f  p99=%4.0f slots  probes=%d wins=%d\n",
			mode, len(run.ReadLatencies),
			percentile(run.ReadLatencies, 0.50), percentile(run.ReadLatencies, 0.99),
			run.HedgeProbes, run.HedgeWins)
	}
	return 0
}
