package main

import (
	"encoding/json"
	"fmt"
	"os"

	"quorumkit/internal/cluster"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/strategy"
)

// Strategy-chaos mode: certify randomized quorum strategies through the
// adversarial scenario suite. Every scenario runs twice on the identical
// seeded stimulus with the same certified strategy installed at boot:
//
//   - frozen:  daemon off — the strategy is pinned to the boot assignment
//     version and serving falls back deterministically the moment the
//     topology outgrows it.
//   - resolve: daemon on with availability-aware re-solving — each
//     suspicion edge re-runs the resilient capacity LP over the surviving
//     sites and installs only KKT-certified results.
//
// The verdicts: one-copy serializability and zero minority writes on every
// run, sampled quorums actually carrying traffic, at least one certified
// re-solve per scenario, and strictly less re-solve regret than frozen
// regret on the identical schedule. With -strategyadversitybase the
// re-solve regret-per-op is additionally gated against the committed
// BENCH_strategy_adversity.json baseline.

// strategyAdvResult is one run's entry in BENCH_strategy_adversity.json.
type strategyAdvResult struct {
	Scenario       string  `json:"scenario"`
	Mode           string  `json:"mode"` // "frozen" | "resolve"
	Ops            int     `json:"ops"`
	GrantRate      float64 `json:"grant_rate"`
	Regret         float64 `json:"regret"`
	RegretPerOp    float64 `json:"regret_per_op"`
	MinorityWrites int     `json:"minority_writes"`
	OneSR          bool    `json:"one_sr"`
	SampledReads   int64   `json:"sampled_reads"`
	SampledWrites  int64   `json:"sampled_writes"`
	Resamples      int64   `json:"resamples"`
	Fallbacks      int64   `json:"fallbacks"`
	StaleFallbacks int64   `json:"stale_fallbacks"`
	Resolves       int64   `json:"resolves"`
	ResolveFails   int64   `json:"resolve_fails"`
	Converged      bool    `json:"converged"`
}

type strategyAdvFile struct {
	Suite         string              `json:"suite"`
	Seed          uint64              `json:"seed"`
	Steps         int                 `json:"steps"`
	SeedCertified bool                `json:"seed_certified"`
	Results       []strategyAdvResult `json:"results"`
}

// strategyAdvSeed solves and certifies the boot strategy the scenarios
// install: the resilient capacity LP over the 9 unit-vote ring sites at
// Majority(9), every sampled quorum surviving any single site failure.
func strategyAdvSeed(alpha float64) (strategy.Strategy, error) {
	const sites = 9
	votes := make([]int, sites)
	unit := make([]float64, sites)
	for i := range votes {
		votes[i], unit[i] = 1, 1
	}
	m := quorum.Majority(sites)
	sys := strategy.System{Votes: votes, QR: m.QR, QW: m.QW,
		ReadCap: unit, WriteCap: unit, Latency: unit}
	res, err := strategy.OptimizeResilientCapacity(sys, strategy.SingleFr(alpha), 1, strategy.Options{})
	if err != nil {
		return strategy.Strategy{}, err
	}
	if err := res.Certify(1e-6); err != nil {
		return strategy.Strategy{}, fmt.Errorf("seed strategy certificate: %w", err)
	}
	return res.Strategy, nil
}

// runStrategyChaos replays every adversarial scenario frozen then
// re-solving on the deterministic runtime, writes
// BENCH_strategy_adversity.json-style output to path, and — when base
// names a committed baseline — gates re-solve regret-per-op against it.
// Exit status is non-zero when any verdict or the gate fails.
func runStrategyChaos(path, base string, steps int, seed uint64, sink *obsSink) int {
	st, err := strategyAdvSeed(0.75)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	status := 0
	file := strategyAdvFile{Suite: "strategy-adversity", Seed: seed, Steps: steps, SeedCertified: true}
	for _, sc := range advScenarios(seed, steps) {
		var runs [2]*cluster.AdversaryRun
		for i, mode := range []string{"frozen", "resolve"} {
			g := graph.Ring(sc.cfg.Sites)
			rt, err := cluster.New(graph.NewState(g, nil), quorum.Majority(sc.cfg.Sites))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			sink.attach(rt)
			cfg := sc.cfg
			cfg.Strategy = &st
			cfg.StrategySeed = seed ^ 0x57a7
			if mode == "resolve" {
				cfg.Daemon = true
				cfg.Health.Strategy = cluster.StrategyResolveConfig{Enabled: true}
			}
			run := cluster.RunAdversary(rt, graph.NewState(g, nil), cfg)
			runs[i] = run

			sct := run.Strategy
			res := strategyAdvResult{
				Scenario: sc.name, Mode: mode, Ops: run.Ops,
				GrantRate: run.Availability(),
				Regret:    run.Regret, RegretPerOp: run.RegretPerOp(),
				MinorityWrites: run.MinorityWrites,
				OneSR:          run.ViolationErr == nil,
				SampledReads:   sct.SampledReads, SampledWrites: sct.SampledWrites,
				Resamples: sct.Resamples, Fallbacks: sct.Fallbacks,
				StaleFallbacks: sct.StaleFallbacks,
				Resolves:       sct.Resolves, ResolveFails: sct.ResolveFails,
				Converged: run.Converged,
			}
			file.Results = append(file.Results, res)
			fmt.Printf("scenario=%-16s mode=%-7s %v\n  %v\n", sc.name, mode, run, sct)

			if run.ViolationErr != nil {
				fmt.Printf("  FAIL: one-copy serializability violated: %v\n", run.ViolationErr)
				status = 1
			}
			if run.MinorityWrites != 0 {
				fmt.Printf("  FAIL: %d writes granted from minority components\n", run.MinorityWrites)
				status = 1
			}
			if sct.SampledReads+sct.SampledWrites == 0 {
				fmt.Printf("  FAIL: %s: the strategy never served an operation\n", sc.name)
				status = 1
			}
			if mode == "resolve" && sct.Resolves == 0 {
				fmt.Printf("  FAIL: %s: the daemon never installed a certified re-solve\n", sc.name)
				status = 1
			}
		}
		frozen, resolve := runs[0], runs[1]
		if resolve.Regret >= frozen.Regret {
			fmt.Printf("  FAIL: %s: re-solve regret %.1f not below frozen %.1f\n",
				sc.name, resolve.Regret, frozen.Regret)
			status = 1
		}
		if !resolve.Converged {
			fmt.Printf("  FAIL: %s: assignment versions diverged after healing: %v\n",
				sc.name, resolve.FinalVersions)
			status = 1
		}
	}

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("wrote %s (%d runs)\n", path, len(file.Results))

	if base != "" {
		if err := gateStrategyAdversity(file, base); err != nil {
			fmt.Fprintf(os.Stderr, "strategy-adversity gate: %v\n", err)
			status = 1
		} else {
			fmt.Printf("strategy-adversity gate vs %s: OK\n", base)
		}
	}
	if status == 0 {
		fmt.Println("strategy-adversity: all verdicts OK (1SR, minority writes, sampling, re-solves, regret)")
	}
	return status
}

// gateStrategyAdversity compares re-solve regret-per-op against the
// committed baseline: a scenario may not drift above its baseline by more
// than the shared adversary tolerance, and no baseline scenario may
// disappear.
func gateStrategyAdversity(cur strategyAdvFile, basePath string) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var base strategyAdvFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	if base.Seed != cur.Seed || base.Steps != cur.Steps {
		return fmt.Errorf("baseline (seed=%d steps=%d) does not match run (seed=%d steps=%d)",
			base.Seed, base.Steps, cur.Seed, cur.Steps)
	}
	resolveOf := func(f strategyAdvFile) map[string]strategyAdvResult {
		m := make(map[string]strategyAdvResult)
		for _, r := range f.Results {
			if r.Mode == "resolve" {
				m[r.Scenario] = r
			}
		}
		return m
	}
	curR, baseR := resolveOf(cur), resolveOf(base)
	for name, b := range baseR {
		c, ok := curR[name]
		if !ok {
			return fmt.Errorf("scenario %q missing from this run", name)
		}
		if c.RegretPerOp > b.RegretPerOp+advRegretTolerance {
			return fmt.Errorf("scenario %q: re-solve regret/op %.4f regressed past baseline %.4f (+%.2f allowed)",
				name, c.RegretPerOp, b.RegretPerOp, advRegretTolerance)
		}
	}
	return nil
}
