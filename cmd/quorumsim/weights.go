package main

// The -weightcheck mode closes the loop between the weighted-vote search and
// the event-driven simulator: the scenario engine predicts the availability
// of the annealer's winning assignment from frozen failure configurations,
// and the paper-faithful discrete-event simulator then measures the same
// assignment live. The two estimators share nothing — different randomness,
// different failure model realization (stationary alternating renewal vs
// independent Bernoulli configurations at the same per-component
// reliability) — so agreement within Monte-Carlo noise is a genuine
// end-to-end check of the search's objective, not a replay.

import (
	"fmt"
	"math"
	"os"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/sim"
	"quorumkit/internal/votes"
)

// runWeightCheck anneals weighted votes on a star (the asymmetric topology
// where weighting matters), predicts availability from the scenario sample,
// and crosschecks against sim.MeasureAvailability under the paper's
// stationary parameters. Returns non-zero when the estimators disagree by
// more than tol.
func runWeightCheck(n int, alpha float64, seed uint64) int {
	const (
		scenarios = 20_000
		tol       = 0.02
	)
	g := graph.Star(n)
	params := sim.PaperParams()
	rel := params.Reliability() // 0.96 for sites AND links, as in the paper

	sc, err := votes.SampleScenarios(g, rel, rel, scenarios, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	obj, err := votes.NewAvailObjective(sc, alpha)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res, err := votes.Anneal(n, obj, votes.SearchConfig{
		MaxVotesPerSite: 4, Seed: seed, Steps: 600, Restarts: 2,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("weightcheck: star(%d), α=%g, reliability %.4f\n", n, alpha, rel)
	fmt.Printf("  annealed votes %v  %v  predicted A = %.4f\n", res.Votes, res.Assignment, res.Value)
	fmt.Printf("  certificate: q_r+q_w=%d > T=%d, survives %d read / %d write failures\n",
		res.Cert.QR+res.Cert.QW, res.Cert.T, res.Cert.ReadSurvives, res.Cert.WriteSurvives)

	m, err := sim.MeasureAvailability(g, res.Votes, params, res.Assignment, alpha, sim.StudyConfig{
		Warmup: 10_000, BatchAccesses: 100_000,
		MinBatches: 5, MaxBatches: 18, CIHalfWidth: 0.005, Seed: seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diff := math.Abs(m.Overall.Mean - res.Value)
	fmt.Printf("  simulator measured A = %.4f ± %.4f (%d batches), |Δ| = %.4f\n",
		m.Overall.Mean, m.Overall.HalfSize, m.Batches, diff)

	uni, err := obj.Eval(quorum.UniformVotes(n))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("  uniform baseline predicted A = %.4f (weighted gain %+.4f)\n", uni.Value, res.Value-uni.Value)

	if diff > tol {
		fmt.Fprintf(os.Stderr, "weightcheck FAIL: prediction and simulation differ by %.4f (tolerance %.2f)\n", diff, tol)
		return 1
	}
	if res.Value < uni.Value {
		fmt.Fprintf(os.Stderr, "weightcheck FAIL: weighted %.4f below uniform %.4f\n", res.Value, uni.Value)
		return 1
	}
	fmt.Println("weightcheck OK: scenario prediction matches the discrete-event simulator")
	return 0
}
