package main

import (
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"quorumkit/internal/obs"
)

// obsSink gathers the observability artifacts a CLI run was asked to
// produce: a Prometheus text snapshot (-metrics), a JSONL protocol trace
// (-trace), and CPU/heap profiles (-pprof). A nil sink, or one with no
// destinations, costs nothing: the registry stays nil, so every runtime
// keeps its no-op fast path.
type obsSink struct {
	reg     *obs.Registry
	metrics string // Prometheus text destination ("-" for stdout)
	trace   string // JSONL trace destination ("-" for stdout)
	cpu     *os.File
	heap    string
}

// newObsSink builds the sink for the requested artifact destinations and,
// when profiling is on, starts the CPU profile immediately so it covers the
// whole run.
func newObsSink(metrics, trace, pprofPrefix string, traceCap int) (*obsSink, error) {
	s := &obsSink{metrics: metrics, trace: trace}
	switch {
	case trace != "":
		s.reg = obs.NewTracing(traceCap)
	case metrics != "":
		s.reg = obs.New()
	}
	if pprofPrefix != "" {
		f, err := os.Create(pprofPrefix + ".cpu.pprof")
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		s.cpu = f
		s.heap = pprofPrefix + ".heap.pprof"
	}
	return s, nil
}

// registry returns the sink's registry; nil when observation is off, which
// every instrumented call site treats as a no-op.
func (s *obsSink) registry() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// observable is satisfied by both cluster runtimes.
type observable interface{ SetObserver(*obs.Registry) }

// attach points a runtime at the sink's registry, if any.
func (s *obsSink) attach(rt any) {
	if s == nil || s.reg == nil {
		return
	}
	if o, ok := rt.(observable); ok {
		o.SetObserver(s.reg)
	}
}

// finish stops profiling and writes the requested artifacts. Call exactly
// once, after the measured run completes.
func (s *obsSink) finish() error {
	if s == nil {
		return nil
	}
	if s.cpu != nil {
		pprof.StopCPUProfile()
		if err := s.cpu.Close(); err != nil {
			return err
		}
		hf, err := os.Create(s.heap)
		if err != nil {
			return err
		}
		runtime.GC() // fold transient garbage so the heap profile shows live data
		err = pprof.WriteHeapProfile(hf)
		if cerr := hf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if s.metrics != "" {
		snap := s.reg.Snapshot()
		if err := writeArtifact(s.metrics, snap.WritePrometheus); err != nil {
			return err
		}
	}
	if s.trace != "" {
		if err := writeArtifact(s.trace, s.reg.Trace().WriteJSONL); err != nil {
			return err
		}
	}
	return nil
}

// writeArtifact writes one artifact to path, with "-" meaning stdout.
func writeArtifact(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
