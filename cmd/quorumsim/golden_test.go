package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestChaosObsArtifactsGolden runs the CLI's chaos mode on the
// deterministic runtime with a fixed seed and compares the -metrics and
// -trace artifacts byte-for-byte against checked-in goldens. The
// deterministic runtime records no wall-clock values (the op-nanos
// histogram stays empty) and draws all randomness from the seed, so the
// artifacts are fully reproducible; any drift means the protocol, the
// instrumentation, or the exposition format changed, which must be
// deliberate. Regenerate with: go test ./cmd/quorumsim -run Golden -update
func TestChaosObsArtifactsGolden(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.prom")
	trace := filepath.Join(dir, "trace.jsonl")
	// A small trace ring keeps the goldens compact and exercises ring
	// wrap-around: the artifact holds the last 2048 events of the run.
	sink, err := newObsSink(metrics, trace, "", 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	if status := runChaos("crash", 120, 5, 42, false, sink); status != 0 {
		t.Fatalf("chaos run exited %d", status)
	}
	if err := sink.finish(); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, metrics, filepath.Join("testdata", "chaos_crash_metrics.prom"))
	compareGolden(t, trace, filepath.Join("testdata", "chaos_crash_trace.jsonl"))
}

// TestChurnObsArtifactsGolden does the same for the richer self-healing
// path: one deterministic-runtime soak (daemon on), covering suspicion
// edges, mode changes, degraded rejects, and daemon counters.
func TestChurnObsArtifactsGolden(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.prom")
	trace := filepath.Join(dir, "trace.jsonl")
	// A small trace ring keeps the goldens compact and exercises ring
	// wrap-around: the artifact holds the last 2048 events of the run.
	sink, err := newObsSink(metrics, trace, "", 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	// One runtime, one seed, daemon on: the deterministic slice of what
	// `quorumsim -churn` runs.
	if status := churnSoakOnce(sink, 42, 600, 9, 0.9); status != 0 {
		t.Fatalf("soak exited %d", status)
	}
	if err := sink.finish(); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, metrics, filepath.Join("testdata", "churn_metrics.prom"))
	compareGolden(t, trace, filepath.Join("testdata", "churn_trace.jsonl"))
}

func compareGolden(t *testing.T, gotPath, goldenPath string) {
	t.Helper()
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatalf("artifact %s is empty", gotPath)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		gotLines := bytes.Split(got, []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w []byte
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if !bytes.Equal(g, w) {
				t.Fatalf("%s drifted at line %d:\n got: %s\nwant: %s",
					goldenPath, i+1, g, w)
			}
		}
		t.Fatalf("%s drifted (lengths %d vs %d)", goldenPath, len(got), len(want))
	}
}

// TestObsSinkOffIsNil: with no destinations requested the sink must keep
// the registry nil, preserving the runtimes' no-op fast path.
func TestObsSinkOffIsNil(t *testing.T) {
	sink, err := newObsSink("", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sink.registry() != nil {
		t.Fatalf("idle sink allocated a registry")
	}
	sink.attach(struct{}{}) // non-observable target: must not panic
	if err := sink.finish(); err != nil {
		t.Fatal(err)
	}
}
