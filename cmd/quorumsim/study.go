package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"quorumkit/internal/sim"
)

// runStudy drives the sharded multi-configuration study engine: the full
// chords × α grid, each cell a single-trajectory family sweep, fanned over
// a deterministic worker pool. Results are bit-identical for every worker
// count — -parallel trades wall-clock only.
func runStudy(sites, workers int, chordsCSV, alphasCSV string, cfg sim.StudyConfig) int {
	spec := sim.GridSpec{Sites: sites, Workers: workers}
	var err error
	if spec.Chords, err = parseInts(chordsCSV); err != nil {
		fmt.Fprintf(os.Stderr, "-chords: %v\n", err)
		return 2
	}
	if spec.Alphas, err = parseFloats(alphasCSV); err != nil {
		fmt.Fprintf(os.Stderr, "-alphas: %v\n", err)
		return 2
	}

	cells, err := sim.RunGrid(spec, sim.PaperParams(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("study: %d sites, %d cells, seed %d\n", firstNonZero(sites, 101), len(cells), cfg.Seed)
	fmt.Printf("%-8s %-6s %-6s %-28s %s\n", "chords", "α", "q_r*", "best availability (95% CI)", "batches")
	for _, cell := range cells {
		best := cell.Family[cell.BestQR-1]
		fmt.Printf("%-8d %-6g %-6d %-28v %d\n",
			cell.Chords, cell.Alpha, cell.BestQR, best.Overall, best.Batches)
	}
	return 0
}

func firstNonZero(v, fallback int) int {
	if v != 0 {
		return v
	}
	return fallback
}

// parseInts parses a comma-separated integer list; empty means defaults.
func parseInts(csv string) ([]int, error) {
	if csv == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// parseFloats parses a comma-separated float list; empty means defaults.
func parseFloats(csv string) ([]float64, error) {
	if csv == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
