package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"quorumkit/internal/cluster"
	"quorumkit/internal/faults"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
)

// soakChurn is the churn regime the soak CLI exercises: links flap hard
// (partitioning the ring into arcs most of the time), sites fail rarely and
// repair fast. Under this regime a static majority assignment denies most
// operations, which is exactly the condition the adaptive daemon exists to
// repair.
func soakChurn() faults.ChurnConfig {
	return faults.ChurnConfig{
		SiteMTBF: 250, SiteMTTR: 25,
		LinkMTBF: 60, LinkMTTR: 25,
	}
}

// soakHealth is the daemon tuning for the soak: the optimizer must chase
// the workload's actual read fraction.
func soakHealth(alpha float64) cluster.HealthConfig {
	cfg := cluster.DefaultHealthConfig()
	cfg.Alpha = alpha
	return cfg
}

// newSoakRuntime builds a fresh runtime on a fresh ring. The async runtime
// must be Closed by the caller.
func newSoakRuntime(sites int, async bool) (cluster.SoakRuntime, func(), error) {
	g := graph.Ring(sites)
	st := graph.NewState(g, nil)
	if async {
		a, err := cluster.NewAsync(st, quorum.Majority(sites))
		if err != nil {
			return nil, nil, err
		}
		return a, a.Close, nil
	}
	c, err := cluster.New(st, quorum.Majority(sites))
	if err != nil {
		return nil, nil, err
	}
	return c, func() {}, nil
}

// churnSoakOnce runs a single deterministic-runtime soak with the daemon
// on, observed through sink. It is the reproducible slice of what -churn
// runs, which is what the golden artifact tests pin down.
func churnSoakOnce(sink *obsSink, seed uint64, ops, sites int, alpha float64) int {
	rt, closer, err := newSoakRuntime(sites, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer closer()
	sink.attach(rt)
	run := cluster.RunSoak(rt, cluster.SoakConfig{
		Seed: seed, Steps: ops, Sites: sites, Links: graph.Ring(sites).M(),
		Alpha: alpha, Churn: soakChurn(),
		Daemon: true, Health: soakHealth(alpha),
	})
	if run.ViolationErr != nil {
		fmt.Fprintln(os.Stderr, run.ViolationErr)
		return 1
	}
	return 0
}

// runChurn runs the churn soak for both runtimes over several seeds, daemon
// on and off on the identical schedule, and prints per-run reports plus the
// three verdicts the harness asserts: one-copy serializability on every
// run, post-churn assignment-version convergence with the daemon on, and
// daemon-on availability at or above daemon-off on every seed (strictly
// above in aggregate). Exit status is non-zero when any verdict fails.
func runChurn(seeds, ops, sites int, alpha float64, baseSeed uint64, sink *obsSink) int {
	links := graph.Ring(sites).M()
	status := 0
	for _, rtName := range []string{"deterministic", "async"} {
		var sumOn, sumOff float64
		perSeedOK := true
		for s := 0; s < seeds; s++ {
			seed := baseSeed + uint64(s)
			var runs [2]*cluster.SoakRun
			for i, daemon := range []bool{false, true} {
				rt, closer, err := newSoakRuntime(sites, rtName == "async")
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 2
				}
				sink.attach(rt)
				runs[i] = cluster.RunSoak(rt, cluster.SoakConfig{
					Seed: seed, Steps: ops, Sites: sites, Links: links,
					Alpha: alpha, Churn: soakChurn(),
					Daemon: daemon, Health: soakHealth(alpha),
				})
				closer()
			}
			off, on := runs[0], runs[1]
			fmt.Printf("runtime=%-13s seed=%d daemon=off %v\n", rtName, seed, off)
			fmt.Printf("runtime=%-13s seed=%d daemon=on  %v\n", rtName, seed, on)
			fmt.Printf("  health: %v\n", on.Health)
			if off.ViolationErr != nil || on.ViolationErr != nil {
				fmt.Printf("  FAIL: one-copy serializability violated\n")
				status = 1
			}
			if !on.Converged {
				fmt.Printf("  FAIL: assignment versions diverged after healing: %v\n", on.FinalVersions)
				status = 1
			}
			if on.Availability() < off.Availability() {
				perSeedOK = false
			}
			sumOn += on.Availability()
			sumOff += off.Availability()
		}
		fmt.Printf("runtime=%-13s mean availability: daemon on %.3f vs off %.3f over %d seeds\n",
			rtName, sumOn/float64(seeds), sumOff/float64(seeds), seeds)
		if !perSeedOK || sumOn <= sumOff {
			fmt.Printf("  FAIL: self-healing daemon did not improve availability\n")
			status = 1
		}
	}
	if status == 0 {
		fmt.Println("churn soak: all verdicts OK (1SR, convergence, availability)")
	}
	return status
}

// benchResult is one entry of the BENCH_robustness.json report.
type benchResult struct {
	Name      string  `json:"name"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	GrantRate float64 `json:"grant_rate,omitempty"`
}

// runBenchJSON times the robustness hot paths — the vote-collection round
// (collect/drain), the failure-detector tick, and the full daemon step —
// plus a short churn soak for an end-to-end ops/sec and grant-rate figure,
// and writes the results as JSON. Mirrors the Go benchmarks in
// internal/cluster/bench_robustness_test.go in a form CI can archive.
func runBenchJSON(path string, seed uint64) int {
	const sites = 9
	var results []benchResult

	time1 := func(name string, ops int, granted int, f func()) {
		start := time.Now()
		f()
		el := time.Since(start).Seconds()
		r := benchResult{Name: name, Ops: ops, OpsPerSec: float64(ops) / el}
		if granted >= 0 {
			r.GrantRate = float64(granted) / float64(ops)
		}
		results = append(results, r)
	}

	// collect/drain: baseline quorum reads on a healthy ring.
	{
		rt, closer, _ := newSoakRuntime(sites, false)
		c := rt.(*cluster.Cluster)
		const ops = 20000
		granted := 0
		time1("deterministic/read-collect-drain", ops, 0, func() {
			for i := 0; i < ops; i++ {
				if _, _, ok := c.Read(i % sites); ok {
					granted++
				}
			}
		})
		results[len(results)-1].GrantRate = float64(granted) / float64(ops)
		closer()
	}

	// detector tick: heartbeat round + suspicion update, healthy ring.
	{
		rt, closer, _ := newSoakRuntime(sites, false)
		rt.EnableSelfHealing(cluster.DefaultHealthConfig())
		const ops = 20000
		time1("deterministic/daemon-step", ops, -1, func() {
			for i := 0; i < ops; i++ {
				rt.DaemonStep(i % sites)
			}
		})
		closer()
	}

	// end-to-end churn soak, daemon on.
	{
		rt, closer, _ := newSoakRuntime(sites, false)
		const ops = 4000
		var run *cluster.SoakRun
		time1("deterministic/churn-soak", ops, 0, func() {
			run = cluster.RunSoak(rt, cluster.SoakConfig{
				Seed: seed, Steps: ops, Sites: sites, Links: graph.Ring(sites).M(),
				Alpha: 0.9, Churn: soakChurn(),
				Daemon: true, Health: soakHealth(0.9),
			})
		})
		results[len(results)-1].GrantRate = run.Availability()
		closer()
	}

	out, err := json.MarshalIndent(map[string]any{
		"suite":   "robustness",
		"seed":    seed,
		"results": results,
	}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))
	return 0
}
