package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"quorumkit/internal/cluster"
	"quorumkit/internal/faults"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/store"
)

// runDiskChaos drives the chaos harness with disk-fault injection layered
// under the crash-bearing message mix: coordinators crash mid-protocol and
// their recoveries replay a damaged log — torn tails truncated and
// repaired, corrupt or wiped media forcing an amnesiac rejoin by state
// transfer. It reports the fault counters (including recoveries, amnesias,
// and rejoins) and the history checker's one-copy-serializability verdict.
// Exit status is non-zero when any run violates 1SR.
func runDiskChaos(diskMixName string, steps, n int, seed uint64, async bool, sink *obsSink) int {
	names := []string{diskMixName}
	if diskMixName == "all" {
		names = faults.DiskNames()
	}
	mix, err := faults.Named("crash")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	status := 0
	for _, name := range names {
		dmix, err := faults.NamedDisk(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		plan := faults.NewPlan(seed, mix)
		g := graph.Complete(n)
		st := graph.NewState(g, nil)

		var rt cluster.ChaosRuntime
		runtimeName := "deterministic"
		if async {
			runtimeName = "async"
			a, err := cluster.NewAsync(st, quorum.Majority(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			defer a.Close()
			a.EnableChaos(plan, cluster.DefaultRetryPolicy())
			a.EnableDiskChaos(faults.NewDiskPlan(seed^0xd15c, dmix))
			rt = a
		} else {
			c, err := cluster.New(st, quorum.Majority(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			c.EnableChaos(plan, cluster.DefaultRetryPolicy())
			c.EnableDiskChaos(faults.NewDiskPlan(seed^0xd15c, dmix))
			rt = c
		}
		sink.attach(rt)

		run := cluster.RunChaos(rt, plan, seed^0xc4a05, steps, n, g.M())
		verdict := "1SR OK"
		if err := run.Log.Check(); err != nil {
			verdict = "VIOLATION: " + err.Error()
			status = 1
		}
		fmt.Printf("diskmix=%-13s runtime=%s seed=%d n=%d\n  %v\n  %v\n  %s\n",
			name, runtimeName, seed, n, run, run.Counters, verdict)
	}
	return status
}

// runBenchStore measures what the durable storage engine costs on the
// write path and writes BENCH_store.json-style output.
//
// Two figures come out of it. The budgeted one is the log append itself —
// encode, checksum, and buffer the record — which must stay under 5% of a
// seed (in-memory) protocol write op: the engine adds one append per
// durable mutation, so a cheap append is what keeps the discipline viable
// as a default. It is measured directly against the engine (PutState in a
// loop at the production compaction cadence) and kept allocation-free by
// the store's scratch-buffer reuse.
//
// The second, informational figure is the whole-path overhead: the same
// quorum-write loop on the identical ring with the engine attached versus
// persistence disabled. That cost is dominated not by appends but by the
// sync barriers the recovery argument requires (one fsync-and-seal before
// every vote reply, ack, and granted return — ~9 per 9-site quorum write),
// and in this in-memory simulator a protocol "op" is microseconds of
// function calls, so the barriers loom far larger than they would over a
// real network. It is reported, not budgeted.
func runBenchStore(path string, seed uint64) int {
	const (
		sites     = 9
		ops       = 20_000
		reps      = 3
		budgetPct = 5.0
	)

	best := func(n int, f func()) float64 {
		bestSec := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			f()
			if s := float64(n) / time.Since(start).Seconds(); s > bestSec {
				bestSec = s
			}
		}
		return bestSec
	}

	writeLoop := func(persist bool) float64 {
		rt, closer, err := newSoakRuntime(sites, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return -1
		}
		defer closer()
		c := rt.(*cluster.Cluster)
		if !persist {
			c.DisablePersistence()
		}
		return best(ops, func() {
			for i := 0; i < ops; i++ {
				c.Write(i%sites, int64(i)+1)
			}
		})
	}

	// The budgeted unit: one PutState append against the engine, synced at
	// the compaction cadence so the log cycles as it does in production.
	const appendOps = 500_000
	disk := store.NewMemDisk()
	s := store.Open(disk, 0)
	s.Reset(store.State{QR: 1, QW: sites}, nil)
	appendsPerSec := best(appendOps, func() {
		for i := 0; i < appendOps; i++ {
			s.PutState(store.State{Value: int64(i), Stamp: int64(i), Version: 1, QR: 1, QW: sites})
			if i%64 == 63 {
				s.Sync()
			}
		}
	})

	durablePerSec := writeLoop(true)
	memoryPerSec := writeLoop(false)
	if durablePerSec < 0 || memoryPerSec < 0 {
		return 2
	}
	totalOverheadPct := 100 * (memoryPerSec/durablePerSec - 1)
	appendNs := 1e9 / appendsPerSec
	seedOpNs := 1e9 / memoryPerSec
	appendPctOfOp := 100 * appendNs / seedOpNs

	out, err := json.MarshalIndent(map[string]any{
		"suite": "store",
		"seed":  seed,
		"ops":   ops,
		"results": []benchResult{
			{Name: "store/append", Ops: appendOps, OpsPerSec: appendsPerSec},
			{Name: "deterministic/write/durable", Ops: ops, OpsPerSec: durablePerSec},
			{Name: "deterministic/write/memory", Ops: ops, OpsPerSec: memoryPerSec},
		},
		"append_ns":               appendNs,
		"append_pct_of_seed_op":   appendPctOfOp,
		"append_budget_pct":       budgetPct,
		"append_within_budget":    appendPctOfOp <= budgetPct,
		"whole_path_overhead_pct": totalOverheadPct,
	}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("wrote %s (append %.0fns = %.2f%% of a seed op, budget %.0f%%; whole-path overhead %.1f%%)\n",
		path, appendNs, appendPctOfOp, budgetPct, totalOverheadPct)
	return 0
}
