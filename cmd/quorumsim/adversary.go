package main

import (
	"encoding/json"
	"fmt"
	"os"

	"quorumkit/internal/cluster"
	"quorumkit/internal/faults"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/workload"
)

// Adversary mode: replay the three canonical adversarial scenarios —
// drifting diurnal workload, flash crowds, and a partition storm layered
// on correlated regional shocks — with the self-healing daemon on and off
// on the identical seeded stimulus, and report each run's cumulative
// regret against the epoch oracle (the optimizer re-run with hindsight).
// The verdicts: one-copy serializability on every run, zero writes
// granted from minority components, and strictly less daemon-on regret
// than daemon-off on every scenario.

// advRegions carves the 9-site ring into three 3-site regions.
func advRegions() [][]int {
	return [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
}

// advScenario names one adversarial configuration.
type advScenario struct {
	name string
	cfg  cluster.AdversaryConfig
}

// advScenarios builds the scenario suite. Each config is pure in (seed,
// steps): the daemon-on and daemon-off replays see identical stimuli.
func advScenarios(seed uint64, steps int) []advScenario {
	const sites = 9
	links := graph.Ring(sites).M()
	base := func(mean float64) cluster.AdversaryConfig {
		return cluster.AdversaryConfig{
			Seed: seed, Steps: steps, Sites: sites, Links: links,
			Churn:  soakChurn(),
			Health: soakHealth(mean),
		}
	}

	diurnal := base(0.6)
	diurnal.Workload = workload.Diurnal{Period: 400, Mean: 0.6, Amplitude: 0.3}

	flash := base(0.45)
	fc := workload.FlashCrowd{
		Base: 0.3, Flash: 0.95,
		Start: 200, Duration: 80, Every: 400, RateBoost: 4,
	}
	flash.Workload = fc
	flash.Rate = fc

	storm := base(0.75)
	storm.Workload = workload.Constant(0.75)
	storm.Churn.Regions = advRegions()[:2]
	storm.Churn.ShockMTBF, storm.Churn.ShockMTTR = 400, 20
	storm.Partitions = faults.Storm(seed, faults.StormConfig{
		Sites: sites, Regions: advRegions(),
		Start: 0, End: int64(steps * 3 / 4),
		MeanDuration: 40, MeanGap: 70, OneWayFraction: 0.25,
	})

	return []advScenario{
		{"diurnal-alpha", diurnal},
		{"flash-crowd", flash},
		{"partition-storm", storm},
	}
}

// advResult is one run's entry in BENCH_adversary.json.
type advResult struct {
	Scenario       string  `json:"scenario"`
	Daemon         bool    `json:"daemon"`
	Ops            int     `json:"ops"`
	GrantRate      float64 `json:"grant_rate"`
	Oracle         float64 `json:"oracle"`
	Regret         float64 `json:"regret"`
	RegretPerOp    float64 `json:"regret_per_op"`
	MinorityWrites int     `json:"minority_writes"`
	PartitionDrops int64   `json:"partition_drops"`
	SettleAvail    float64 `json:"settle_avail"`
	OneSR          bool    `json:"one_sr"`
	Converged      bool    `json:"converged"`
}

type advFile struct {
	Suite   string      `json:"suite"`
	Seed    uint64      `json:"seed"`
	Steps   int         `json:"steps"`
	Results []advResult `json:"results"`
}

// advRegretTolerance bounds how far a daemon-on run's regret-per-op may
// drift above the committed baseline. The replay is deterministic in the
// seed, so the slack only absorbs cross-architecture floating-point
// variation, not real regressions.
const advRegretTolerance = 0.02

// runAdversary replays every scenario daemon-off then daemon-on on the
// deterministic runtime, writes BENCH_adversary.json-style output to
// path, and — when base names a committed baseline — gates daemon-on
// regret-per-op against it. Exit status is non-zero when any verdict or
// the gate fails.
func runAdversary(path, base string, steps int, seed uint64, sink *obsSink) int {
	status := 0
	file := advFile{Suite: "adversary", Seed: seed, Steps: steps}
	for _, sc := range advScenarios(seed, steps) {
		var runs [2]*cluster.AdversaryRun
		for i, daemon := range []bool{false, true} {
			g := graph.Ring(sc.cfg.Sites)
			rt, err := cluster.New(graph.NewState(g, nil), quorum.Majority(sc.cfg.Sites))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			sink.attach(rt)
			cfg := sc.cfg
			cfg.Daemon = daemon
			run := cluster.RunAdversary(rt, graph.NewState(g, nil), cfg)
			runs[i] = run

			res := advResult{
				Scenario: sc.name, Daemon: daemon, Ops: run.Ops,
				GrantRate: run.Availability(), Oracle: run.OracleAvailability(),
				Regret: run.Regret, RegretPerOp: run.RegretPerOp(),
				MinorityWrites: run.MinorityWrites, PartitionDrops: run.PartitionDrops,
				SettleAvail: run.SettleAvailability(),
				OneSR:       run.ViolationErr == nil, Converged: run.Converged,
			}
			file.Results = append(file.Results, res)
			fmt.Printf("scenario=%-16s daemon=%-5v %v\n", sc.name, daemon, run)

			if run.ViolationErr != nil {
				fmt.Printf("  FAIL: one-copy serializability violated: %v\n", run.ViolationErr)
				status = 1
			}
			if run.MinorityWrites != 0 {
				fmt.Printf("  FAIL: %d writes granted from minority components\n", run.MinorityWrites)
				status = 1
			}
		}
		off, on := runs[0], runs[1]
		if on.Regret >= off.Regret {
			fmt.Printf("  FAIL: %s: daemon-on regret %.1f not below daemon-off %.1f\n",
				sc.name, on.Regret, off.Regret)
			status = 1
		}
		if !on.Converged {
			fmt.Printf("  FAIL: %s: assignment versions diverged after healing: %v\n",
				sc.name, on.FinalVersions)
			status = 1
		}
	}

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("wrote %s (%d runs)\n", path, len(file.Results))

	if base != "" {
		if err := gateAdversary(file, base); err != nil {
			fmt.Fprintf(os.Stderr, "adversary gate: %v\n", err)
			status = 1
		} else {
			fmt.Printf("adversary gate vs %s: OK\n", base)
		}
	}
	if status == 0 {
		fmt.Println("adversary: all verdicts OK (1SR, minority writes, regret, convergence)")
	}
	return status
}

// gateAdversary compares daemon-on regret-per-op against the committed
// baseline: a scenario may not drift above its baseline by more than the
// tolerance, and no baseline scenario may disappear.
func gateAdversary(cur advFile, basePath string) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var base advFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", basePath, err)
	}
	if base.Seed != cur.Seed || base.Steps != cur.Steps {
		return fmt.Errorf("baseline (seed=%d steps=%d) does not match run (seed=%d steps=%d)",
			base.Seed, base.Steps, cur.Seed, cur.Steps)
	}
	onOf := func(f advFile) map[string]advResult {
		m := make(map[string]advResult)
		for _, r := range f.Results {
			if r.Daemon {
				m[r.Scenario] = r
			}
		}
		return m
	}
	curOn, baseOn := onOf(cur), onOf(base)
	for name, b := range baseOn {
		c, ok := curOn[name]
		if !ok {
			return fmt.Errorf("scenario %q missing from this run", name)
		}
		if c.RegretPerOp > b.RegretPerOp+advRegretTolerance {
			return fmt.Errorf("scenario %q: regret/op %.4f regressed past baseline %.4f (+%.2f allowed)",
				name, c.RegretPerOp, b.RegretPerOp, advRegretTolerance)
		}
	}
	return nil
}
