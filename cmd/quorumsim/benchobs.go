package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"quorumkit/internal/cluster"
	"quorumkit/internal/obs"
)

// runBenchObs measures what observation costs on the protocol hot path and
// writes the results as BENCH_obs.json-style output. Three configurations
// run the identical quorum-read loop on the identical ring:
//
//   - noop: no registry attached — every instrumented call site takes the
//     nil-guard fast path;
//   - counting: a counting registry (atomic counters + histograms);
//   - tracing: a tracing registry (counters plus the ring-buffer tracer).
//
// The no-op overhead figure is derived from a direct measurement of the
// nil-receiver call cost scaled by the number of instrumented calls one
// read performs (itself read back from the counting registry), expressed
// as a fraction of the uninstrumented op cost.
func runBenchObs(path string, seed uint64) int {
	const (
		sites = 9
		ops   = 30_000
		reps  = 3
	)

	// best runs one rep-timed loop and returns the best ops/sec over reps,
	// using the fastest rep to suppress scheduler noise.
	best := func(f func()) float64 {
		bestSec := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			f()
			if s := float64(ops) / time.Since(start).Seconds(); s > bestSec {
				bestSec = s
			}
		}
		return bestSec
	}

	readLoop := func(reg *obs.Registry) float64 {
		rt, closer, err := newSoakRuntime(sites, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return -1
		}
		defer closer()
		c := rt.(*cluster.Cluster)
		c.SetObserver(reg)
		return best(func() {
			for i := 0; i < ops; i++ {
				c.Read(i % sites)
			}
		})
	}

	noopPerSec := readLoop(nil)
	counting := obs.New()
	countingPerSec := readLoop(counting)
	tracingPerSec := readLoop(obs.NewTracing(obs.DefaultTraceCap))
	if noopPerSec < 0 || countingPerSec < 0 || tracingPerSec < 0 {
		return 2
	}

	// Instrumented calls per read, from the counting run's own counters:
	// one counter bump per message event plus one decision counter, plus
	// one histogram observation per op.
	snap := counting.Snapshot()
	var bumps int64
	for _, v := range snap.Counters {
		bumps += v
	}
	totalOps := int64(ops * reps)
	callsPerOp := float64(bumps)/float64(totalOps) + 1

	// Direct cost of one nil-receiver registry call.
	var nilReg *obs.Registry
	const nilCalls = 50_000_000
	start := time.Now()
	for i := 0; i < nilCalls; i++ {
		nilReg.Inc(obs.CReadGrant)
	}
	nsPerNilCall := float64(time.Since(start).Nanoseconds()) / nilCalls

	nsPerOp := 1e9 / noopPerSec
	noopOverheadPct := 100 * callsPerOp * nsPerNilCall / nsPerOp
	countingOverheadPct := 100 * (noopPerSec/countingPerSec - 1)
	tracingOverheadPct := 100 * (noopPerSec/tracingPerSec - 1)

	out, err := json.MarshalIndent(map[string]any{
		"suite": "obs",
		"seed":  seed,
		"ops":   ops,
		"results": []benchResult{
			{Name: "deterministic/read/noop", Ops: ops, OpsPerSec: noopPerSec},
			{Name: "deterministic/read/counting", Ops: ops, OpsPerSec: countingPerSec},
			{Name: "deterministic/read/tracing", Ops: ops, OpsPerSec: tracingPerSec},
			{Name: "nil-registry-call", Ops: nilCalls, OpsPerSec: 1e9 / nsPerNilCall},
		},
		"instrumented_calls_per_op": callsPerOp,
		"noop_overhead_pct":         noopOverheadPct,
		"counting_overhead_pct":     countingOverheadPct,
		"tracing_overhead_pct":      tracingOverheadPct,
	}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("wrote %s (no-op overhead %.3f%%, counting %.1f%%, tracing %.1f%%)\n",
		path, noopOverheadPct, countingOverheadPct, tracingOverheadPct)
	return 0
}
