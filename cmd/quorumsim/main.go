// Command quorumsim measures the availability of a quorum assignment by
// direct discrete-event simulation with the paper's batching methodology
// (§5.2): warm-up, fixed-size batches from a fresh initial state, 95%
// confidence intervals.
//
// With -chaos it instead drives the message-level protocol runtimes under
// seeded fault injection (drops, duplication, reordering, delay, coordinator
// crashes) and reports the fault counters together with the history
// checker's one-copy-serializability verdict.
//
// With -diskchaos it layers disk-fault injection under the crash-bearing
// message mix: crashed coordinators recover by replaying a damaged durable
// log — torn tails truncated and repaired, corrupt or wiped media forcing
// an amnesiac rejoin by state transfer — and the run reports recoveries,
// amnesias, rejoins, and the 1SR verdict.
//
// With -study it runs the large-N study engine: the full chords × α grid,
// each cell measured by a single-trajectory family sweep (one simulation
// per batch serving every assignment via suffix sums), fanned across a
// deterministic worker pool. -parallel trades wall-clock only — cell
// results are bit-identical for every worker count.
//
// With -churn it runs the self-healing soak: a ring under seeded site/link
// churn, serving a read-heavy workload with the adaptive reassignment
// daemon on versus off on the identical schedule, asserting one-copy
// serializability, post-churn assignment-version convergence, and an
// availability win for the daemon.
//
// With -adversary it replays the adversarial scenario suite — diurnal
// workload drift, flash crowds with rate × α shifts, and a partition storm
// layered on correlated regional shocks — with the self-healing daemon on
// and off on the identical seeded stimulus. Each run is scored against an
// epoch oracle (the paper's optimizer re-run with hindsight on the epoch's
// realized workload and fault pattern); the cumulative oracle gap is the
// run's regret, written as BENCH_adversary.json-style output and gated
// against a committed baseline with -adversarybase. Every run must keep
// one-copy serializability and grant zero writes from minority partitions.
//
// With -strategychaos it replays the same adversarial suite with a
// certified randomized quorum strategy installed at boot, frozen (daemon
// off, strategy pinned to the boot assignment version) versus re-solving
// (daemon on, every suspicion edge re-running the resilient capacity LP
// over the surviving sites, installing only KKT-certified results). Output
// is BENCH_strategy_adversity.json-style and gated against a committed
// baseline with -strategyadversitybase; every run must keep one-copy
// serializability, grant zero minority writes, and the re-solving run must
// beat the frozen run's regret on the identical stimulus.
//
// With -benchjson it times the robustness hot paths and writes
// BENCH_robustness.json-style output; -benchobs measures the observability
// layer's own overhead and writes BENCH_obs.json-style output; -benchstore
// measures the durable storage engine's overhead on the write path against
// its 5% budget and writes BENCH_store.json-style output; -benchcore
// measures the study engine's hot kernels (assignment curve, steady-state
// access, family-sweep speedup) and writes BENCH_core.json-style output,
// gating against a committed baseline when -benchbase is given.
//
// Observability flags compose with every mode: -metrics writes a Prometheus
// text snapshot of the run's counters, gauges, and histograms; -trace writes
// the structured protocol event trace as JSONL; -pprof writes stdlib CPU and
// heap profiles. All three are off by default and cost nothing when off.
//
// Usage:
//
//	quorumsim -topology 2 -qr 28 -alpha 0.75
//	quorumsim -topology 0 -qr 50 -alpha 0.5 -batch 1000000 -paper
//	quorumsim -study -sites 1001 -chords 0,4 -alphas 0.75 -parallel 4
//	quorumsim -benchcore BENCH_core.json -benchbase BENCH_core.json
//	quorumsim -chaos -chaosmix all -ops 5000 -seed 7
//	quorumsim -diskchaos -diskmix disk-all -ops 2000 -seed 7
//	quorumsim -churn -seeds 3 -soakops 4000
//	quorumsim -weightcheck -weightsites 9 -alpha 0.75 -seed 1
//	quorumsim -adversary BENCH_adversary.json -adversarybase BENCH_adversary.json
//	quorumsim -churn -metrics metrics.prom -trace trace.jsonl -pprof churn
//	quorumsim -benchjson BENCH_robustness.json
//	quorumsim -benchobs BENCH_obs.json
package main

import (
	"flag"
	"fmt"
	"os"

	"quorumkit/internal/cluster"
	"quorumkit/internal/faults"
	"quorumkit/internal/graph"
	"quorumkit/internal/obs"
	"quorumkit/internal/quorum"
	"quorumkit/internal/sim"
	"quorumkit/internal/topo"
)

func main() {
	var (
		topology = flag.Int("topology", 0, "chord count (0,1,2,4,16,256,4949)")
		qr       = flag.Int("qr", 50, "read quorum; write quorum is T−q_r+1")
		alpha    = flag.Float64("alpha", 0.75, "fraction of accesses that are reads")
		warmup   = flag.Int64("warmup", 10_000, "warm-up accesses per batch")
		batch    = flag.Int64("batch", 100_000, "accesses per batch")
		minB     = flag.Int("minbatches", 5, "minimum batches")
		maxB     = flag.Int("maxbatches", 18, "maximum batches")
		ci       = flag.Float64("ci", 0.005, "target 95% CI half-width")
		seed     = flag.Uint64("seed", 1, "base seed")
		paper    = flag.Bool("paper", false, "use the paper's full batch sizes (overrides -warmup/-batch)")
		sweepAll = flag.Bool("sweep", false, "measure every q_r in the family (one shared trajectory, suffix-summed)")

		study       = flag.Bool("study", false, "run the sharded chords × α study grid (large-N engine)")
		studyChords = flag.String("chords", "", "study: comma-separated chord counts (empty = the paper's axis)")
		studyAlphas = flag.String("alphas", "", "study: comma-separated read fractions (empty = the paper's levels)")
		parallel    = flag.Int("parallel", 0, "study: worker pool size (0 = GOMAXPROCS); results are identical for every value")

		benchCore = flag.String("benchcore", "", "write core-kernel benchmark results (assignment kernel, steady-state access, sweep speedup) to this JSON file and exit")
		benchBase = flag.String("benchbase", "", "with -benchcore: gate against this committed baseline (fail on allocs, <5× sweep speedup, or >10% calibrated slowdown)")

		benchStrategy = flag.String("benchstrategy", "", "write strategy-optimizer benchmark results (case-study gain, sim agreement, 1001-site column generation) to this JSON file and exit")
		strategyBase  = flag.String("strategybase", "", "with -benchstrategy: gate against this committed BENCH_strategy.json baseline (certificates, 2% sim agreement, bound gap, calibrated solve time)")

		chaos    = flag.Bool("chaos", false, "run the chaos harness against the protocol runtimes instead")
		chaosMix = flag.String("chaosmix", "all", "fault mix name, or 'all' (one of: "+joinNames()+")")
		ops      = flag.Int("ops", 2000, "scheduled operations per chaos run")
		nodes    = flag.Int("nodes", 7, "sites in the chaos cluster (complete graph)")
		async    = flag.Bool("async", false, "use the concurrent runtime for the chaos run")

		diskChaos = flag.Bool("diskchaos", false, "run the chaos harness with disk-fault injection under the crash mix")
		diskMix   = flag.String("diskmix", "all", "disk fault mix name, or 'all' (one of: "+joinDiskNames()+")")

		adversary     = flag.String("adversary", "", "run the adversarial scenario suite (diurnal drift, flash crowds, partition storms) and write regret results to this JSON file")
		adversaryBase = flag.String("adversarybase", "", "with -adversary: gate daemon-on regret/op against this committed BENCH_adversary.json baseline")
		advOps        = flag.Int("advops", 2500, "adversary: churn-phase steps per scenario")

		strategyChaos    = flag.String("strategychaos", "", "run the adversarial suite with a certified randomized strategy installed, frozen vs daemon re-solving, and write regret results to this JSON file")
		strategyAdvBase  = flag.String("strategyadversitybase", "", "with -strategychaos: gate re-solve regret/op against this committed BENCH_strategy_adversity.json baseline")
		strategyChaosOps = flag.Int("strategyops", 2500, "strategychaos: churn-phase steps per scenario")

		grayfail  = flag.String("grayfail", "", "run the gray-failure suite (slow replicas, gray storms, adaptive adversary) and write regret/latency results to this JSON file")
		benchGray = flag.String("benchgray", "", "with -grayfail: gate φ-detector regret/op and the hedge ratio against this committed BENCH_gray.json baseline")
		grayOps   = flag.Int("grayops", 2000, "grayfail: steps per scenario run")
		hedge     = flag.Bool("hedge", false, "run the hedged-read demo: slow-replica scenario unhedged vs hedged, printing the p50/p99 read-latency shift")

		weightCheck = flag.Bool("weightcheck", false, "anneal weighted votes on a star and crosscheck the scenario engine's predicted availability against the discrete-event simulator")
		weightSites = flag.Int("weightsites", 9, "weightcheck: star size")

		churn      = flag.Bool("churn", false, "run the churn soak: self-healing daemon on vs off under site/link churn")
		soakSeeds  = flag.Int("seeds", 3, "churn soak: seeds per configuration")
		soakOps    = flag.Int("soakops", 4000, "churn soak: churn-phase operations per run")
		sites      = flag.Int("sites", 0, "ring size: study grid (0 = the paper's 101) or churn soak (0 = 9)")
		soakAlpha  = flag.Float64("soakalpha", 0.9, "churn soak: read fraction")
		benchJSON  = flag.String("benchjson", "", "write robustness micro-benchmark results (ops/sec, grant rate) to this JSON file and exit")
		benchObs   = flag.String("benchobs", "", "write observability overhead benchmark results to this JSON file and exit")
		benchStore = flag.String("benchstore", "", "write storage-engine overhead benchmark results to this JSON file and exit")

		metricsOut  = flag.String("metrics", "", "write a Prometheus text metrics snapshot to this file after the run ('-' for stdout)")
		traceOut    = flag.String("trace", "", "write the structured protocol event trace as JSONL to this file after the run ('-' for stdout)")
		traceCap    = flag.Int("tracecap", obs.DefaultTraceCap, "trace ring capacity (oldest events overwritten beyond this)")
		pprofPrefix = flag.String("pprof", "", "write CPU and heap profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	)
	flag.Parse()

	sink, err := newObsSink(*metricsOut, *traceOut, *pprofPrefix, *traceCap)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var status int
	switch {
	case *benchCore != "":
		status = runBenchCore(*benchCore, *benchBase, *seed)
	case *benchStrategy != "":
		status = runBenchStrategy(*benchStrategy, *strategyBase, *seed)
	case *study:
		cfg := sim.StudyConfig{
			Warmup:        *warmup,
			BatchAccesses: *batch,
			MinBatches:    *minB,
			MaxBatches:    *maxB,
			CIHalfWidth:   *ci,
			Seed:          *seed,
			Obs:           sink.registry(),
		}
		status = runStudy(*sites, *parallel, *studyChords, *studyAlphas, cfg)
	case *benchStore != "":
		status = runBenchStore(*benchStore, *seed)
	case *benchObs != "":
		status = runBenchObs(*benchObs, *seed)
	case *benchJSON != "":
		status = runBenchJSON(*benchJSON, *seed)
	case *grayfail != "":
		status = runGrayfail(*grayfail, *benchGray, *grayOps, *seed, sink)
	case *hedge:
		status = runHedgeDemo(*grayOps, *seed, sink)
	case *strategyChaos != "":
		status = runStrategyChaos(*strategyChaos, *strategyAdvBase, *strategyChaosOps, *seed, sink)
	case *adversary != "":
		status = runAdversary(*adversary, *adversaryBase, *advOps, *seed, sink)
	case *weightCheck:
		status = runWeightCheck(*weightSites, *alpha, *seed)
	case *churn:
		status = runChurn(*soakSeeds, *soakOps, firstNonZero(*sites, 9), *soakAlpha, *seed, sink)
	case *diskChaos:
		status = runDiskChaos(*diskMix, *ops, *nodes, *seed, *async, sink)
	case *chaos:
		status = runChaos(*chaosMix, *ops, *nodes, *seed, *async, sink)
	default:
		cfg := sim.StudyConfig{
			Warmup:        *warmup,
			BatchAccesses: *batch,
			MinBatches:    *minB,
			MaxBatches:    *maxB,
			CIHalfWidth:   *ci,
			Seed:          *seed,
		}
		if *paper {
			cfg = sim.PaperStudy()
			cfg.Seed = *seed
		}
		cfg.Obs = sink.registry()
		status = runMeasure(*topology, *qr, *alpha, *sweepAll, cfg)
	}
	if err := sink.finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if status == 0 {
			status = 2
		}
	}
	os.Exit(status)
}

// runMeasure runs the direct availability measurement (the default mode):
// either one assignment or, with sweep, the full family.
func runMeasure(topology, qr int, alpha float64, sweep bool, cfg sim.StudyConfig) int {
	g := topo.Paper(topology)
	T := g.N()

	if sweep {
		fmt.Printf("%s, α=%g: direct measurement of the full assignment family\n",
			topo.Name(topology), alpha)
		measurements, err := sim.Sweep(g, nil, sim.PaperParams(), alpha, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("%-6s %-28s %s\n", "q_r", "availability (95% CI)", "batches")
		for i, m := range measurements {
			fmt.Printf("%-6d %-28v %d\n", i+1, m.Overall, m.Batches)
		}
		return 0
	}

	a := quorum.Assignment{QR: qr, QW: T - qr + 1}
	if err := a.Validate(T); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Printf("%s, %v, α=%g, batches of %d accesses\n",
		topo.Name(topology), a, alpha, cfg.BatchAccesses)
	meas, err := sim.MeasureAvailability(g, nil, sim.PaperParams(), a, alpha, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("availability (ACC): %v over %d batches\n", meas.Overall, meas.Batches)
	if alpha > 0 {
		fmt.Printf("read availability:  %v\n", meas.Read)
	}
	if alpha < 1 {
		fmt.Printf("write availability: %v\n", meas.Write)
	}
	return 0
}

func joinNames() string {
	out := ""
	for i, n := range faults.Names() {
		if i > 0 {
			out += " "
		}
		out += n
	}
	return out
}

func joinDiskNames() string {
	out := ""
	for i, n := range faults.DiskNames() {
		if i > 0 {
			out += " "
		}
		out += n
	}
	return out
}

// runChaos drives the message-level chaos harness for each requested mix
// and prints per-run availability, the fault counters, and the history
// checker's verdict. Exit status is non-zero when any run violates
// one-copy serializability (which would be a protocol bug, not a fault
// effect).
func runChaos(mixName string, steps, n int, seed uint64, async bool, sink *obsSink) int {
	names := []string{mixName}
	if mixName == "all" {
		names = faults.Names()
	}
	status := 0
	for _, name := range names {
		mix, err := faults.Named(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		plan := faults.NewPlan(seed, mix)
		g := graph.Complete(n)
		st := graph.NewState(g, nil)

		var rt cluster.ChaosRuntime
		runtimeName := "deterministic"
		if async {
			runtimeName = "async"
			a, err := cluster.NewAsync(st, quorum.Majority(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			defer a.Close()
			a.EnableChaos(plan, cluster.DefaultRetryPolicy())
			rt = a
		} else {
			c, err := cluster.New(st, quorum.Majority(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			c.EnableChaos(plan, cluster.DefaultRetryPolicy())
			rt = c
		}
		sink.attach(rt)

		run := cluster.RunChaos(rt, plan, seed^0xc4a05, steps, n, g.M())
		verdict := "1SR OK"
		if err := run.Log.Check(); err != nil {
			verdict = "VIOLATION: " + err.Error()
			status = 1
		}
		fmt.Printf("mix=%-13s runtime=%s seed=%d n=%d\n  %v\n  %v\n  %s\n",
			name, runtimeName, seed, n, run, run.Counters, verdict)
	}
	return status
}
