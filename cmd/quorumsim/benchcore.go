package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"quorumkit/internal/core"
	"quorumkit/internal/dist"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/rng"
	"quorumkit/internal/sim"
)

// coreBench is one timed kernel in BENCH_core.json. The ratio normalizes
// the wall-clock figure by a per-host RNG calibration loop, so the
// committed baseline can gate regressions across machines of different
// speeds: a kernel that slows down relative to the same host's raw
// arithmetic throughput has genuinely regressed.
type coreBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Ratio       float64 `json:"ratio"`
}

type coreBenchFile struct {
	CalibrationNs float64     `json:"calibration_ns_per_op"`
	Results       []coreBench `json:"results"`
	SweepSpeedupX float64     `json:"sweep_speedup_x"`
	SweepBitEqual bool        `json:"sweep_bit_identical"`
}

// runBenchCore measures the large-N study engine's two hot kernels and the
// family-sweep speedup at the paper-style scale of 1001 sites, writes the
// results to path, and — when base names a committed BENCH_core.json —
// gates against it: steady-state access must stay allocation-free, the
// sweep must stay ≥ 5× faster than the per-assignment reference (and
// bit-identical to it), and neither kernel's calibrated ratio may exceed
// its baseline by more than 10%.
func runBenchCore(path, base string, seed uint64) int {
	const sites = 1001

	// Calibration: the host's raw sequential throughput, measured as the
	// cost of one xoshiro draw. Kernel ratios are in units of this.
	calNs := calibrateRNG(seed)

	kernelNs, kernelAllocs := benchAssignmentKernel(sites, seed)
	accessNs, accessAllocs := benchSteadyStateAccess(sites, seed)
	speedup, bitEqual, err := benchSweepSpeedup(sites, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	file := coreBenchFile{
		CalibrationNs: calNs,
		Results: []coreBench{
			{Name: "assignment_kernel", NsPerOp: kernelNs, AllocsPerOp: kernelAllocs, Ratio: kernelNs / calNs},
			{Name: "steady_state_access", NsPerOp: accessNs, AllocsPerOp: accessAllocs, Ratio: accessNs / calNs},
		},
		SweepSpeedupX: speedup,
		SweepBitEqual: bitEqual,
	}

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, r := range file.Results {
		fmt.Printf("%-22s %10.1f ns/op  %6.1f allocs/op  ratio %.2f\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.Ratio)
	}
	fmt.Printf("%-22s %10.1f×          bit-identical: %v\n", "sweep_speedup", speedup, bitEqual)

	if base == "" {
		return 0
	}
	return gateBenchCore(file, base)
}

// gateBenchCore compares a fresh run against the committed baseline.
func gateBenchCore(cur coreBenchFile, base string) int {
	raw, err := os.ReadFile(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var b coreBenchFile
	if err := json.Unmarshal(raw, &b); err != nil {
		fmt.Fprintf(os.Stderr, "parsing baseline %s: %v\n", base, err)
		return 2
	}
	baseline := make(map[string]coreBench, len(b.Results))
	for _, r := range b.Results {
		baseline[r.Name] = r
	}

	status := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "BENCH GATE FAIL: "+format+"\n", args...)
		status = 1
	}
	for _, r := range cur.Results {
		if r.AllocsPerOp > 0 {
			fail("%s allocates (%.2f allocs/op, want 0)", r.Name, r.AllocsPerOp)
		}
		bl, ok := baseline[r.Name]
		if !ok {
			fail("%s missing from baseline %s", r.Name, base)
			continue
		}
		if bl.Ratio > 0 && r.Ratio > bl.Ratio*1.10 {
			fail("%s calibrated ratio %.3f exceeds baseline %.3f by >10%%", r.Name, r.Ratio, bl.Ratio)
		}
	}
	if !cur.SweepBitEqual {
		fail("family sweep is not bit-identical to the per-assignment reference")
	}
	if cur.SweepSpeedupX < 5 {
		fail("sweep speedup %.1f× below the 5× floor", cur.SweepSpeedupX)
	}
	if status == 0 {
		fmt.Printf("bench gate OK against %s\n", base)
	}
	return status
}

// calibrateRNG returns the best-of-3 cost of one RNG draw in nanoseconds.
func calibrateRNG(seed uint64) float64 {
	const draws = 20_000_000
	r := rng.New(seed)
	var sink uint64
	bestNs := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < draws; i++ {
			sink ^= r.Uint64()
		}
		ns := float64(time.Since(start).Nanoseconds()) / draws
		if bestNs == 0 || ns < bestNs {
			bestNs = ns
		}
	}
	_ = sink
	return bestNs
}

// benchAssignmentKernel times one full-family availability curve at T
// votes — the O(T) suffix-sum kernel the optimizer and the sweep share —
// and counts its steady-state heap allocations.
func benchAssignmentKernel(T int, seed uint64) (nsPerOp, allocsPerOp float64) {
	r := rng.New(seed)
	read, write := randomPMFInto(r, T), randomPMFInto(r, T)
	dst := make([]float64, T/2)

	const ops = 2_000
	warm := func() {
		for i := 0; i < ops; i++ {
			dst = core.AvailabilityCurveInto(0.75, read, write, dst)
		}
	}
	warm()
	allocsPerOp = measureAllocs(ops, warm)
	bestNs := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		warm()
		ns := float64(time.Since(start).Nanoseconds()) / ops
		if bestNs == 0 || ns < bestNs {
			bestNs = ns
		}
	}
	return bestNs, allocsPerOp
}

// benchSteadyStateAccess times one access on a warmed 1001-site ring
// simulator and counts its heap allocations (contract: exactly zero).
func benchSteadyStateAccess(sites int, seed uint64) (nsPerOp, allocsPerOp float64) {
	g := graph.Ring(sites)
	s := sim.New(g, nil, sim.PaperParams(), seed)
	T := s.State().TotalVotes()
	s.SetProtocol(sim.StaticProtocol{Assignment: quorum.Assignment{QR: T/2 + 1, QW: T/2 + 1}}, 0.75)
	s.RunAccesses(20_000) // reach steady state

	const ops = 200_000
	allocsPerOp = measureAllocs(ops, func() { s.RunAccesses(ops) })
	bestNs := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		s.RunAccesses(ops)
		ns := float64(time.Since(start).Nanoseconds()) / ops
		if bestNs == 0 || ns < bestNs {
			bestNs = ns
		}
	}
	return bestNs, allocsPerOp
}

// benchSweepSpeedup runs the paper-style 1001-site family sweep through
// the single-trajectory engine and through the seed per-assignment
// reference, returning the wall-clock ratio and whether the two produced
// bit-identical measurements.
func benchSweepSpeedup(sites int, seed uint64) (speedup float64, bitEqual bool, err error) {
	g := graph.Ring(sites)
	cfg := sim.StudyConfig{
		Warmup: 200, BatchAccesses: 1_000,
		MinBatches: 2, MaxBatches: 2, CIHalfWidth: 0.005, Seed: seed,
	}
	const alpha = 0.75

	start := time.Now()
	fast, err := sim.Sweep(g, nil, sim.PaperParams(), alpha, cfg)
	if err != nil {
		return 0, false, err
	}
	fastSec := time.Since(start).Seconds()

	start = time.Now()
	ref, err := sim.SweepReference(g, nil, sim.PaperParams(), alpha, cfg)
	if err != nil {
		return 0, false, err
	}
	refSec := time.Since(start).Seconds()

	return refSec / fastSec, reflect.DeepEqual(fast, ref), nil
}

// measureAllocs returns heap allocations per op of one run of f(ops).
func measureAllocs(ops int, f func()) float64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(ops)
}

// randomPMFInto draws a normalized density over vote totals 0..T.
func randomPMFInto(r *rng.Source, T int) dist.PMF {
	p := make(dist.PMF, T+1)
	sum := 0.0
	for i := range p {
		p[i] = r.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}
