package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"quorumkit/internal/graph"
	"quorumkit/internal/rng"
	"quorumkit/internal/sim"
	"quorumkit/internal/strategy"
)

// strategyBenchFile is BENCH_strategy.json: the strategy optimizer's
// headline numbers — case-study optimality and randomization gain, LP-vs-
// simulator capacity agreement, and the large-N column-generation solve —
// with enough raw figures to gate regressions. Solve times are normalized
// by the same per-host RNG calibration as BENCH_core.json so the committed
// baseline transfers across machines.
type strategyBenchFile struct {
	CalibrationNs float64 `json:"calibration_ns_per_op"`

	CaseStudy struct {
		Capacity              float64 `json:"capacity"`
		DeterministicCapacity float64 `json:"deterministic_capacity"`
		RandomizationGainX    float64 `json:"randomization_gain_x"`
		ResilientCapacity     float64 `json:"resilient_capacity_f1"`
		LatencyValue          float64 `json:"latency_value"`
		Certified             bool    `json:"certified"`
		SolveMs               float64 `json:"solve_ms"`
	} `json:"case_study"`

	SimAgreement struct {
		Fr          float64 `json:"fr"`
		LPCapacity  float64 `json:"lp_capacity"`
		SimCapacity float64 `json:"sim_capacity"`
		RelErr      float64 `json:"rel_err"`
		Batches     int     `json:"batches"`
	} `json:"sim_agreement"`

	LargeN struct {
		Sites     int     `json:"sites"`
		TargetGap float64 `json:"target_gap"`
		Value     float64 `json:"value"`
		Bound     float64 `json:"bound"`
		Gap       float64 `json:"gap"`
		Rounds    int     `json:"rounds"`
		Generated int     `json:"generated"`
		Pivots    int     `json:"pivots"`
		Certified bool    `json:"certified"`
		SolveSec  float64 `json:"solve_sec"`
		Ratio     float64 `json:"ratio"`
	} `json:"large_n"`
}

// runBenchStrategy solves the strategy suite, writes the results to path,
// and — when base names a committed BENCH_strategy.json — gates against
// it: every certificate must validate, the randomized case-study optimum
// must strictly beat the best deterministic assignment, simulated capacity
// must agree with the LP within 2%, the large-N solve must certify
// within its target gap, and its calibrated solve-time ratio may not
// exceed the baseline's by more than 50%.
func runBenchStrategy(path, base string, seed uint64) int {
	var file strategyBenchFile
	file.CalibrationNs = calibrateRNG(seed)

	// Case study: the paper-style 5-node system under the nonuniform
	// read-fraction distribution, all three objectives.
	sys := strategy.CaseStudySystem()
	d := strategy.CaseStudyFrDist()
	start := time.Now()
	capRes, err := strategy.OptimizeCapacity(sys, d, strategy.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	file.CaseStudy.SolveMs = float64(time.Since(start).Microseconds()) / 1000
	certified := strategy.CertifyGlobalCapacity(sys, d, 0, capRes, 1e-9) == nil

	_, detCap, err := strategy.BestDeterministic(sys, d, strategy.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res1, err := strategy.OptimizeResilientCapacity(sys, d, 1, strategy.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	certified = certified && strategy.CertifyGlobalCapacity(sys, d, 1, res1, 1e-9) == nil
	lat, err := strategy.OptimizeLatency(sys, d, strategy.CaseStudyLoadLimit(), strategy.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	certified = certified && lat.Certify(1e-9) == nil

	file.CaseStudy.Capacity = capRes.Capacity
	file.CaseStudy.DeterministicCapacity = detCap
	file.CaseStudy.RandomizationGainX = capRes.Capacity / detCap
	file.CaseStudy.ResilientCapacity = res1.Capacity
	file.CaseStudy.LatencyValue = lat.Value
	file.CaseStudy.Certified = certified

	// Simulator agreement: measure the optimal strategy's empirical
	// capacity on a failure-free network and compare to the LP closed form.
	const fr = 0.7
	frRes, err := strategy.OptimizeCapacity(sys, strategy.SingleFr(fr), strategy.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	m, err := sim.MeasureStrategyLoad(graph.Complete(5), sys,
		sim.Params{AccessMean: 1, FailMean: 1e12, RepairMean: 1e-6},
		frRes.Strategy, fr, sim.StudyConfig{
			Warmup: 1_000, BatchAccesses: 200_000,
			MinBatches: 5, MaxBatches: 5, CIHalfWidth: 0.001, Seed: seed,
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	file.SimAgreement.Fr = fr
	file.SimAgreement.LPCapacity = frRes.Capacity
	file.SimAgreement.SimCapacity = m.Capacity.Mean
	file.SimAgreement.RelErr = math.Abs(m.Capacity.Mean-frRes.Capacity) / frRes.Capacity
	file.SimAgreement.Batches = m.Batches

	// Large N: a system far past the enumeration cutoff, solved by column
	// generation to a certified bound gap. 151 sites keeps the dense-master
	// solve around a minute of single-core time (the gate runs per push);
	// the same machinery runs at 1000+ sites via `quorumopt -strategy
	// -stratn 1001 -gap 0.05`, but closing the gap there is tens of
	// minutes of degenerate pivoting — dual stabilization is the known
	// fix and a roadmap item.
	const sites = 151
	const targetGap = 0.05
	large := heteroStrategySystem(sites, seed)
	ld, err := strategy.NewFrDist(map[float64]float64{0.8: 2, 0.5: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	start = time.Now()
	lres, err := strategy.OptimizeCapacity(large, ld, strategy.Options{TargetGap: targetGap})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	file.LargeN.SolveSec = time.Since(start).Seconds()
	file.LargeN.Sites = sites
	file.LargeN.TargetGap = targetGap
	file.LargeN.Value = lres.Value
	file.LargeN.Bound = lres.Bound
	file.LargeN.Gap = (lres.Value - lres.Bound) / lres.Value
	file.LargeN.Rounds = lres.Rounds
	file.LargeN.Generated = lres.Generated
	file.LargeN.Pivots = lres.Sol.Pivots
	file.LargeN.Certified = lres.Certify(1e-6) == nil
	file.LargeN.Ratio = file.LargeN.SolveSec * 1e9 / file.CalibrationNs

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Printf("case study: capacity %.1f vs deterministic %.1f (gain %.2f×), certified=%v, %.1f ms\n",
		file.CaseStudy.Capacity, file.CaseStudy.DeterministicCapacity,
		file.CaseStudy.RandomizationGainX, file.CaseStudy.Certified, file.CaseStudy.SolveMs)
	fmt.Printf("sim agreement: LP %.1f vs sim %.1f (rel err %.4f) over %d batches\n",
		file.SimAgreement.LPCapacity, file.SimAgreement.SimCapacity,
		file.SimAgreement.RelErr, file.SimAgreement.Batches)
	fmt.Printf("large N: %d sites, gap %.4f (target %.2f), %d rounds, %d columns, certified=%v, %.1f s\n",
		file.LargeN.Sites, file.LargeN.Gap, targetGap, file.LargeN.Rounds,
		file.LargeN.Generated, file.LargeN.Certified, file.LargeN.SolveSec)

	if base == "" {
		return 0
	}
	return gateBenchStrategy(file, base)
}

// gateBenchStrategy enforces the strategy acceptance criteria against the
// committed baseline.
func gateBenchStrategy(cur strategyBenchFile, base string) int {
	raw, err := os.ReadFile(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var b strategyBenchFile
	if err := json.Unmarshal(raw, &b); err != nil {
		fmt.Fprintf(os.Stderr, "parsing baseline %s: %v\n", base, err)
		return 2
	}
	status := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "BENCH GATE FAIL: "+format+"\n", args...)
		status = 1
	}
	if !cur.CaseStudy.Certified {
		fail("case-study certificates did not validate")
	}
	if cur.CaseStudy.RandomizationGainX <= 1.01 {
		fail("randomized capacity gain %.3f× does not strictly beat deterministic",
			cur.CaseStudy.RandomizationGainX)
	}
	if cur.CaseStudy.Capacity < b.CaseStudy.Capacity*0.999 {
		fail("case-study capacity %.3f below baseline %.3f", cur.CaseStudy.Capacity, b.CaseStudy.Capacity)
	}
	if cur.SimAgreement.RelErr > 0.02 {
		fail("sim capacity disagrees with LP by %.4f (limit 0.02)", cur.SimAgreement.RelErr)
	}
	if !cur.LargeN.Certified {
		fail("large-N certificate did not validate")
	}
	if cur.LargeN.Gap > cur.LargeN.TargetGap+1e-9 {
		fail("large-N bound gap %.4f exceeds target %.2f", cur.LargeN.Gap, cur.LargeN.TargetGap)
	}
	if b.LargeN.Ratio > 0 && cur.LargeN.Ratio > b.LargeN.Ratio*1.5 {
		fail("large-N calibrated solve ratio %.3g exceeds baseline %.3g by >50%%",
			cur.LargeN.Ratio, b.LargeN.Ratio)
	}
	if status == 0 {
		fmt.Printf("bench gate OK against %s\n", base)
	}
	return status
}

// heteroStrategySystem draws the benchmark's n-site heterogeneous majority
// system, deterministic in the seed (mirrors `quorumopt -strategy -stratn`).
func heteroStrategySystem(n int, seed uint64) strategy.System {
	src := rng.New(seed)
	sys := strategy.System{
		Votes: make([]int, n), QR: n/2 + 1, QW: n/2 + 1,
		ReadCap:  make([]float64, n),
		WriteCap: make([]float64, n),
		Latency:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sys.Votes[i] = 1
		sys.ReadCap[i] = 1000 + 3000*src.Float64()
		sys.WriteCap[i] = 500 + 1500*src.Float64()
		sys.Latency[i] = 1 + 9*src.Float64()
	}
	return sys
}
