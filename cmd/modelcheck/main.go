// Command modelcheck exhaustively explores the quorum consensus + QR
// reassignment protocol's reachable state space on a small network and
// verifies the safety invariants (single writer; reads see the latest
// write) in every state. On violation it prints a counterexample trace.
//
// Usage:
//
//	modelcheck -net path -n 4
//	modelcheck -net ring -n 4 -versioncap 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"quorumkit/internal/check"
	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
)

func main() {
	var (
		net        = flag.String("net", "path", "topology: path | ring | star | complete")
		n          = flag.Int("n", 4, "number of sites (keep ≤ 5)")
		versionCap = flag.Int64("versioncap", 3, "max reassignment version explored")
		maxStates  = flag.Int("maxstates", 2_000_000, "state budget")
	)
	flag.Parse()

	var g *graph.Graph
	switch *net {
	case "path":
		g = graph.Path(*n)
	case "ring":
		g = graph.Ring(*n)
	case "star":
		g = graph.Star(*n)
	case "complete":
		g = graph.Complete(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown -net %q\n", *net)
		os.Exit(2)
	}

	cfg := check.DefaultConfig(*n)
	cfg.VersionCap = *versionCap
	cfg.MaxStates = *maxStates

	fmt.Printf("exploring %s with %d sites, %d links; assignments %v, version cap %d\n",
		*net, g.N(), g.M(), cfg.Assignments, cfg.VersionCap)
	start := time.Now()
	states, err := check.ExploreQR(g, quorum.Majority(*n), cfg)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "VIOLATION after %d states (%v): %v\n", states, elapsed, err)
		os.Exit(1)
	}
	fmt.Printf("verified %d reachable states in %v: both invariants hold\n", states, elapsed)
}
