// Command tracegen generates, validates and summarizes failure/repair
// traces for the study's networks. Traces are JSON and replay
// deterministically, so an experiment's exact failure schedule can be
// archived with its results.
//
// Usage:
//
//	tracegen -topology 4 -horizon 10000 -seed 7 > trace.json
//	tracegen -inspect trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"quorumkit/internal/graph"
	"quorumkit/internal/sim"
	"quorumkit/internal/topo"
	"quorumkit/internal/trace"
)

func main() {
	var (
		topology = flag.Int("topology", 0, "paper topology chord count")
		horizon  = flag.Float64("horizon", 10_000, "trace horizon in time units")
		seed     = flag.Uint64("seed", 1, "generation seed")
		inspect  = flag.String("inspect", "", "validate and summarize a trace file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		summarize(tr)
		return
	}

	g := topo.Paper(*topology)
	p := sim.PaperParams()
	tr := trace.Generate(g.N(), g.M(), p.FailMean, p.RepairMean, *horizon, *seed)
	if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %d events for %s over %g time units\n",
		len(tr.Events), topo.Name(*topology), *horizon)
}

func summarize(tr *trace.Trace) {
	fmt.Printf("trace: %d sites, %d links, horizon %g, seed %d, %d events\n",
		tr.N, tr.M, tr.Horizon, tr.Seed, len(tr.Events))
	counts := map[trace.EventKind]int{}
	for _, e := range tr.Events {
		counts[e.Kind]++
	}
	for _, k := range []trace.EventKind{trace.SiteFail, trace.SiteRepair, trace.LinkFail, trace.LinkRepair} {
		fmt.Printf("  %-12s %d\n", k, counts[k])
	}
	// Replay to report the mean number of components over event times
	// (needs a graph: assume a ring when M == N, otherwise skip replay).
	if tr.M == tr.N {
		g := graph.Ring(tr.N)
		st := graph.NewState(g, nil)
		r, err := trace.NewReplayer(tr, st)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		sum, steps := 0, 0
		for !r.Done() {
			r.Step()
			sum += st.NumComponents()
			steps++
		}
		if steps > 0 {
			fmt.Printf("  mean components across events (ring replay): %.2f\n",
				float64(sum)/float64(steps))
		}
	}
}
