// Command voteopt optimizes vote assignments jointly with quorum
// assignments on small asymmetric topologies — the companion problem of the
// paper's reference [7]. Availability is computed exactly by enumerating
// failure configurations, so it is limited to small systems (the literature
// it reproduces reached seven sites).
//
// Usage:
//
//	voteopt -net star -n 6 -p 0.9 -r 0.7 -alpha 0.5 -max 3
//	voteopt -net path -n 5 -search exhaustive
package main

import (
	"flag"
	"fmt"
	"os"

	"quorumkit/internal/graph"
	"quorumkit/internal/votes"
)

func main() {
	var (
		net    = flag.String("net", "star", "topology: star | path | ring | complete | grid2x3")
		n      = flag.Int("n", 6, "number of sites")
		p      = flag.Float64("p", 0.9, "site reliability")
		r      = flag.Float64("r", 0.7, "link reliability")
		alpha  = flag.Float64("alpha", 0.5, "fraction of accesses that are reads")
		maxV   = flag.Int("max", 3, "maximum votes per site")
		search = flag.String("search", "hillclimb", "search: hillclimb | exhaustive")
	)
	flag.Parse()

	var g *graph.Graph
	switch *net {
	case "star":
		g = graph.Star(*n)
	case "path":
		g = graph.Path(*n)
	case "ring":
		g = graph.Ring(*n)
	case "complete":
		g = graph.Complete(*n)
	case "grid2x3":
		g = graph.Grid(2, 3)
	default:
		fmt.Fprintf(os.Stderr, "unknown -net %q\n", *net)
		os.Exit(2)
	}

	cfg := votes.Config{P: *p, R: *r, Alpha: *alpha, MaxVotesPerSite: *maxV}
	fmt.Printf("topology %s (n=%d, m=%d), p=%g, r=%g, α=%g\n",
		*net, g.N(), g.M(), *p, *r, *alpha)

	uni, err := votes.Uniform(g, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("uniform votes %v: %v  A = %.4f\n", uni.Votes, uni.Assignment, uni.Availability)

	deg := votes.DegreeHeuristic(g, *maxV)
	dev, err := votes.Evaluate(g, deg, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("degree votes  %v: %v  A = %.4f\n", dev.Votes, dev.Assignment, dev.Availability)

	var best votes.Evaluation
	switch *search {
	case "hillclimb":
		best, err = votes.HillClimb(g, cfg)
	case "exhaustive":
		best, err = votes.Exhaustive(g, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown -search %q\n", *search)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s votes %v: %v  A = %.4f\n", *search, best.Votes, best.Assignment, best.Availability)
	if best.Availability > uni.Availability {
		fmt.Printf("improvement over uniform: +%.4f\n", best.Availability-uni.Availability)
	}
}
