// Command voteopt optimizes vote assignments jointly with quorum
// assignments — the companion problem of the paper's reference [7].
//
// Two evaluation paths back the search. Small systems (n ≤ 7) use exact
// failure-configuration enumeration, as in the literature this reproduces.
// Larger systems — the annealer is comfortable into the hundreds of sites —
// are scored against a frozen common-random-numbers scenario sample: the
// partition structure is sampled once and every candidate weight vector
// merely re-prices it, so candidate comparisons are noise-free and the whole
// search is deterministic in -seed.
//
// Every candidate the search engines accept carries an O(n log n) pigeonhole
// certificate of read/write quorum intersection; the engines never accept an
// uncertified system.
//
// Usage:
//
//	voteopt -net star -n 6 -p 0.9 -r 0.7 -alpha 0.5 -max 3
//	voteopt -net path -n 5 -search exhaustive
//	voteopt -net star -n 100 -search anneal -scenarios 1000 -steps 800
//	voteopt -objective capacity -n 12 -search anneal
//	voteopt -benchweights BENCH_weights.json [-weightsbase BENCH_weights.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/strategy"
	"quorumkit/internal/votes"
)

// exactLimit is the largest system the exact-enumeration objective handles;
// beyond it the availability objective switches to the scenario engine.
const exactLimit = 7

func main() {
	var (
		net       = flag.String("net", "star", "topology: star | path | ring | complete | grid2x3")
		n         = flag.Int("n", 6, "number of sites")
		p         = flag.Float64("p", 0.9, "site reliability")
		r         = flag.Float64("r", 0.7, "link reliability")
		alpha     = flag.Float64("alpha", 0.5, "fraction of accesses that are reads")
		maxV      = flag.Int("max", 3, "maximum votes per site")
		search    = flag.String("search", "hillclimb", "search: hillclimb | exhaustive | anneal")
		objective = flag.String("objective", "avail", "objective: avail | capacity")
		seed      = flag.Uint64("seed", 1, "search and scenario seed")
		scenarios = flag.Int("scenarios", 1000, "failure scenarios for the large-n availability objective")
		steps     = flag.Int("steps", 0, "annealing steps per restart (0 = default)")
		restarts  = flag.Int("restarts", 0, "annealing restarts (0 = default)")
		budget    = flag.Int("budget", 0, "total vote budget (0 = n·max)")
		benchOut  = flag.String("benchweights", "", "write BENCH_weights.json to this path and exit")
		benchBase = flag.String("weightsbase", "", "gate -benchweights against this committed baseline")
	)
	flag.Parse()

	if *benchOut != "" {
		os.Exit(runBenchWeights(*benchOut, *benchBase, *seed))
	}

	g, err := buildGraph(*net, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	nn := g.N()
	scfg := votes.SearchConfig{
		MaxVotesPerSite: *maxV,
		TotalBudget:     *budget,
		Seed:            *seed,
		Restarts:        *restarts,
		Steps:           *steps,
	}

	var obj votes.Objective
	switch *objective {
	case "avail":
		if nn <= exactLimit && *search != "anneal" {
			obj = votes.ExactObjective{G: g, Cfg: votes.Config{
				P: *p, R: *r, Alpha: *alpha,
				MaxVotesPerSite: *maxV, TotalBudget: *budget,
			}}
		} else {
			sc, err := votes.SampleScenarios(g, *p, *r, *scenarios, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			obj, err = votes.NewAvailObjective(sc, *alpha)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case "capacity":
		obj = capacityObjective(nn)
	default:
		fmt.Fprintf(os.Stderr, "unknown -objective %q\n", *objective)
		os.Exit(2)
	}

	fmt.Printf("topology %s (n=%d, m=%d), p=%g, r=%g, α=%g, objective %s (%s)\n",
		*net, nn, g.M(), *p, *r, *alpha, *objective, obj.Name())

	uni, err := obj.Eval(quorum.UniformVotes(nn))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("uniform baseline: %v  value = %.6f\n", uni.Assignment, uni.Value)

	var res votes.SearchResult
	switch *search {
	case "hillclimb":
		res, err = votes.HillClimbObjective(nn, obj, quorum.UniformVotes(nn), scfg)
	case "exhaustive":
		res, err = votes.ExhaustiveObjective(nn, obj, scfg)
	case "anneal":
		res, err = votes.Anneal(nn, obj, scfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown -search %q\n", *search)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s votes %v\n", *search, res.Votes)
	fmt.Printf("  %v  value = %.6f  (evaluations %d)\n", res.Assignment, res.Value, res.Evaluations)
	fmt.Printf("  certificate: q_r+q_w=%d > T=%d, 2·q_w=%d > T; survives %d read / %d write failures\n",
		res.Cert.QR+res.Cert.QW, res.Cert.T, 2*res.Cert.QW, res.Cert.ReadSurvives, res.Cert.WriteSurvives)
	if *search == "anneal" {
		fmt.Printf("  accepted %d (all certified: %v), trajectory %016x\n",
			res.Accepted, res.Accepted == res.CertifiedAccepts, res.TrajectoryHash)
	}
	if res.Value > uni.Value {
		fmt.Printf("improvement over uniform: +%.6f\n", res.Value-uni.Value)
	}
}

func buildGraph(net string, n int) (*graph.Graph, error) {
	switch net {
	case "star":
		return graph.Star(n), nil
	case "path":
		return graph.Path(n), nil
	case "ring":
		return graph.Ring(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "grid2x3":
		return graph.Grid(2, 3), nil
	default:
		return nil, fmt.Errorf("unknown -net %q", net)
	}
}

// capacityObjective builds the tiered synthetic capacity model used when no
// measured capacities are supplied: alternating fast (4000/2000 accesses per
// unit time) and slow (2000/1000) sites, a 90%-read workload. The capacity
// LP and its KKT certificate come from internal/strategy.
func capacityObjective(n int) votes.CapacityObjective {
	readCap := make([]float64, n)
	writeCap := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			readCap[i], writeCap[i] = 4000, 2000
		} else {
			readCap[i], writeCap[i] = 2000, 1000
		}
	}
	fr, err := strategy.NewFrDist(map[float64]float64{0.9: 1})
	if err != nil {
		panic(err) // constant input; unreachable
	}
	return votes.CapacityObjective{ReadCap: readCap, WriteCap: writeCap, Dist: fr}
}
