package main

// The weights benchmark: certified annealing runs at representative scales,
// written as BENCH_weights.json and gated against the committed baseline in
// CI. The gate asserts the search's quality contract, not wall-clock alone:
// every accepted candidate carried an intersection certificate, the weighted
// result never fell below the uniform baseline, an in-process rerun with the
// same seed reproduced the result bit-for-bit, and the objective values
// match the committed baseline to 1e-9 relative (values are deterministic
// across machines up to last-ulp differences in math.Exp; the trajectory
// hash is recorded for forensics but only compared within one host's
// double run).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"quorumkit/internal/graph"
	"quorumkit/internal/quorum"
	"quorumkit/internal/votes"
)

// weightsBench is one annealing run in BENCH_weights.json.
type weightsBench struct {
	Name          string  `json:"name"`
	Sites         int     `json:"sites"`
	Objective     string  `json:"objective"`
	Value         float64 `json:"value"`
	UniformValue  float64 `json:"uniform_value"`
	Votes         []int   `json:"votes"`
	QR            int     `json:"qr"`
	QW            int     `json:"qw"`
	Evaluations   int     `json:"evaluations"`
	Accepted      int     `json:"accepted"`
	AllCertified  bool    `json:"all_certified"`
	Deterministic bool    `json:"deterministic"`
	Trajectory    string  `json:"trajectory_hash"`
	ElapsedSec    float64 `json:"elapsed_sec"`
}

type weightsBenchFile struct {
	Seed    uint64         `json:"seed"`
	Results []weightsBench `json:"results"`
}

// weightsCase is one benchmark scenario: a builder for the objective (fresh
// per run — objectives reuse internal buffers) and the search configuration.
type weightsCase struct {
	name string
	n    int
	obj  func() (votes.Objective, error)
	cfg  votes.SearchConfig
}

func weightsCases(seed uint64) []weightsCase {
	avail := func(g *graph.Graph, p, r, alpha float64, count int) func() (votes.Objective, error) {
		return func() (votes.Objective, error) {
			sc, err := votes.SampleScenarios(g, p, r, count, seed)
			if err != nil {
				return nil, err
			}
			return votes.NewAvailObjective(sc, alpha)
		}
	}
	return []weightsCase{
		{
			name: "star-100-avail",
			n:    100,
			obj:  avail(graph.Star(100), 0.9, 0.7, 0.5, 1000),
			cfg:  votes.SearchConfig{MaxVotesPerSite: 4, Seed: seed, Steps: 800, Restarts: 2},
		},
		{
			// The moderate-n regime where weighting strictly beats uniform:
			// on a 20-site star at r=0.7 the annealer finds hub-weighted
			// assignments worth ~+0.03 availability. (At n=100 the uniform
			// majority is already near-optimal — the star-100 case documents
			// that equality honestly rather than hiding it.)
			name: "star-20-avail",
			n:    20,
			obj:  avail(graph.Star(20), 0.9, 0.7, 0.5, 4000),
			cfg:  votes.SearchConfig{MaxVotesPerSite: 4, Seed: seed, Steps: 1000, Restarts: 2},
		},
		{
			name: "path-40-avail",
			n:    40,
			obj:  avail(graph.Path(40), 0.9, 0.8, 0.75, 800),
			cfg:  votes.SearchConfig{MaxVotesPerSite: 3, Seed: seed, Steps: 600, Restarts: 2},
		},
		{
			name: "tiered-12-capacity",
			n:    12,
			obj:  func() (votes.Objective, error) { return capacityObjective(12), nil },
			cfg:  votes.SearchConfig{MaxVotesPerSite: 3, Seed: seed, Steps: 80, Restarts: 1},
		},
	}
}

// runBenchWeights executes every weights case twice (the determinism check),
// writes the results to path, and gates against base when given.
func runBenchWeights(path, base string, seed uint64) int {
	file := weightsBenchFile{Seed: seed}
	for _, c := range weightsCases(seed) {
		obj, err := c.obj()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		uni, err := obj.Eval(quorum.UniformVotes(c.n))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		start := time.Now()
		res, err := votes.Anneal(c.n, obj, c.cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		elapsed := time.Since(start).Seconds()

		// Rerun on a FRESH objective: same seed must reproduce the entire
		// SearchResult, trajectory hash included.
		obj2, err := c.obj()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		res2, err := votes.Anneal(c.n, obj2, c.cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		deterministic := res.Value == res2.Value &&
			res.TrajectoryHash == res2.TrajectoryHash &&
			res.Evaluations == res2.Evaluations &&
			votesEqual(res.Votes, res2.Votes)

		file.Results = append(file.Results, weightsBench{
			Name:          c.name,
			Sites:         c.n,
			Objective:     obj.Name(),
			Value:         res.Value,
			UniformValue:  uni.Value,
			Votes:         res.Votes,
			QR:            res.Assignment.QR,
			QW:            res.Assignment.QW,
			Evaluations:   res.Evaluations,
			Accepted:      res.Accepted,
			AllCertified:  res.Accepted == res.CertifiedAccepts && res.Cert.Intersects(),
			Deterministic: deterministic,
			Trajectory:    fmt.Sprintf("%016x", res.TrajectoryHash),
			ElapsedSec:    elapsed,
		})
	}

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, r := range file.Results {
		fmt.Printf("%-20s n=%-4d %-8s value %.6f (uniform %.6f)  %d evals  %.2fs  certified=%v deterministic=%v\n",
			r.Name, r.Sites, r.Objective, r.Value, r.UniformValue, r.Evaluations, r.ElapsedSec, r.AllCertified, r.Deterministic)
	}

	if base == "" {
		return 0
	}
	return gateBenchWeights(file, base)
}

// gateBenchWeights enforces the quality contract against the committed
// baseline.
func gateBenchWeights(cur weightsBenchFile, base string) int {
	raw, err := os.ReadFile(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var b weightsBenchFile
	if err := json.Unmarshal(raw, &b); err != nil {
		fmt.Fprintf(os.Stderr, "parsing baseline %s: %v\n", base, err)
		return 2
	}
	baseline := make(map[string]weightsBench, len(b.Results))
	for _, r := range b.Results {
		baseline[r.Name] = r
	}

	status := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "WEIGHTS GATE FAIL: "+format+"\n", args...)
		status = 1
	}
	totalSec := 0.0
	for _, r := range cur.Results {
		totalSec += r.ElapsedSec
		if !r.AllCertified {
			fail("%s accepted an uncertified candidate", r.Name)
		}
		if !r.Deterministic {
			fail("%s is not deterministic across same-seed reruns", r.Name)
		}
		if r.Value < r.UniformValue {
			fail("%s weighted value %.9f below uniform %.9f", r.Name, r.Value, r.UniformValue)
		}
		bl, ok := baseline[r.Name]
		if !ok {
			fail("%s missing from baseline %s", r.Name, base)
			continue
		}
		if relDiff(r.Value, bl.Value) > 1e-9 {
			fail("%s value %.12f drifted from baseline %.12f", r.Name, r.Value, bl.Value)
		}
	}
	if totalSec > 60 {
		fail("benchmark took %.1fs, over the 60s budget", totalSec)
	}
	if status == 0 {
		fmt.Printf("weights gate OK against %s\n", base)
	}
	return status
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	return d / math.Max(math.Abs(a), math.Abs(b))
}

func votesEqual(a, b quorum.VoteAssignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
