// Command figures regenerates the paper's evaluation: the availability
// curves of Figures 2–7 (plus the fully-connected topology described in
// text), the §5.3 endpoint checks, the §5.4 write-constraint worked
// example, and the §5.5 optima classification.
//
// Usage:
//
//	figures [flags]
//
//	-topology N   run only the topology with N chords (default: all)
//	-accesses N   simulation horizon in expected accesses (default 400000)
//	-seed N       simulation seed (default 1)
//	-step N       print every Nth read quorum in curve tables (default 7)
//	-csv DIR      also write each figure's curves as CSV files
//	-check        print the §5.3 endpoint checks
//	-writeconstraint  print the §5.4 worked example (Figure 4 topology)
//	-optima       print the §5.5 optima classification
//	-dynamic      run the §4.3 dynamic-vs-static comparison
//	-surv         run the §3 SURV-vs-ACC metric comparison
//	-crossover    print the §5.5 crossover read fractions
//	-benefit      print the replication-benefit study (ref. [15])
//	-protocols    print the paired five-protocol comparison
//	-all          enable every analysis section
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"quorumkit/internal/experiments"
	"quorumkit/internal/sim"
)

func main() {
	var (
		topology = flag.Int("topology", -1, "chord count of a single topology to run (-1 = all)")
		accesses = flag.Int64("accesses", 400_000, "simulation horizon in expected accesses")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		step     = flag.Int("step", 7, "print every Nth read quorum")
		check    = flag.Bool("check", false, "print §5.3 endpoint checks")
		writeCon = flag.Bool("writeconstraint", false, "print the §5.4 worked example")
		optima   = flag.Bool("optima", false, "print the §5.5 optima classification")
		dynamic  = flag.Bool("dynamic", false, "run the §4.3 dynamic-vs-static comparison")
		surv     = flag.Bool("surv", false, "run the §3 SURV-vs-ACC metric comparison")
		cross    = flag.Bool("crossover", false, "print the §5.5 crossover read fractions")
		benefit  = flag.Bool("benefit", false, "print the replication-benefit study (ref. [15])")
		protos   = flag.Bool("protocols", false, "print the paired protocol comparison")
		csvDir   = flag.String("csv", "", "also write each figure's curves as CSV into this directory")
		runAll   = flag.Bool("all", false, "enable every analysis section")
	)
	flag.Parse()
	if *runAll {
		*check, *writeCon, *optima, *dynamic, *surv = true, true, true, true, true
		*cross, *benefit, *protos = true, true, true
	}

	cfg := sim.CollectConfig{
		Mode:     sim.TimeWeighted,
		Accesses: *accesses,
		Warmup:   *accesses / 20,
		Seed:     *seed,
	}
	params := sim.PaperParams()

	specs := experiments.Figures
	if *topology >= 0 {
		spec, err := experiments.FigureByChords(*topology)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = []experiments.FigureSpec{spec}
	}

	// Run the topologies concurrently (each is an independent simulation),
	// then print in order.
	results := make([]experiments.FigureResult, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec experiments.FigureSpec) {
			defer wg.Done()
			results[i], errs[i] = experiments.RunFigure(spec, params, cfg)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printFigure(results[i], *step)
		if *check {
			printChecks(results[i])
		}
		if *csvDir != "" {
			if err := writeCSVFile(*csvDir, results[i]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	if *writeCon {
		printWriteConstraint(results)
	}
	if *optima {
		printOptima(results)
	}
	if *dynamic {
		printDynamic(*seed)
	}
	if *surv {
		printSurv(*accesses, *seed)
	}
	if *cross {
		printCrossover(cfg)
	}
	if *benefit {
		printBenefit(cfg)
	}
	if *protos {
		printProtocols(*seed)
	}
}

func printProtocols(seed uint64) {
	fmt.Printf("\npaired protocol comparison on topology 4 (one schedule, all arms):\n")
	fmt.Printf("%-6s %-10s %-10s %-22s %-12s %-12s\n",
		"α", "majority", "ROWA", "Fig.1 optimal", "dyn voting", "QR dynamic")
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		res, err := experiments.CompareProtocols(4, alpha, 100_000, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Printf("%-6.2f %-10.4f %-10.4f %-8.4f %v %-12.4f %-12.4f\n",
			alpha, res.StaticMajority, res.StaticROWA,
			res.StaticOptimal, res.OptimalAssign, res.DynamicVoting, res.QRDynamic)
	}
}

func printCrossover(cfg sim.CollectConfig) {
	fmt.Printf("\n§5.5 crossover: majority stays optimal up to read fraction α*:\n")
	rows, err := experiments.CrossoverTable(sim.PaperParams(), cfg, []int{0, 1, 2, 4, 16, 256})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	for _, r := range rows {
		fmt.Printf("  %-34s α* = %.3f\n", r.Topology, r.Alpha)
	}
}

func printBenefit(cfg sim.CollectConfig) {
	fmt.Printf("\nreplication benefit (vs best primary copy), α = 0.75:\n")
	for _, chords := range []int{0, 16, 256} {
		res, err := experiments.ReplicationBenefit(chords, 0.75, sim.PaperParams(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Printf("  ring+%-9d replicated %v A=%.4f vs primary(site %d) A=%.4f → ×%.3f (ceiling p=%.2f)\n",
			chords, res.Replicated.Assignment, res.Replicated.Availability,
			res.BestPrimary, res.SingleCopy, res.Ratio, res.SiteReliabilty)
	}
}

func printDynamic(seed uint64) {
	cfg := experiments.DefaultDynamicConfig()
	cfg.Seed = seed
	res, err := experiments.DynamicVsStatic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("\n§4.3 dynamic reassignment vs static assignments\n")
	fmt.Printf("(topology %d, %d phases alternating α=%.2f / α=%.2f, %d accesses each)\n",
		cfg.Chords, cfg.Phases, cfg.AlphaHigh, cfg.AlphaLow, cfg.AccessesPerPhase)
	fmt.Printf("  static majority:         A = %.4f\n", res.StaticMajority)
	fmt.Printf("  static optimal (avg α):  A = %.4f  %v\n", res.StaticOptimal, res.StaticOptimalAssignment)
	fmt.Printf("  dynamic (QR protocol):   A = %.4f  (%d reassignments, %d stale reads)\n",
		res.Dynamic, res.Reassignments, res.StaleReads)
}

func printSurv(accesses int64, seed uint64) {
	fmt.Printf("\n§3 metric comparison (SURV vs ACC), α = 0.50:\n")
	fmt.Printf("%-14s %-22s %-22s %-14s\n", "topology", "ACC optimum", "SURV optimum", "ACC(SURV pick)")
	for _, chords := range []int{0, 4, 16, 256} {
		res, err := experiments.SurvVsAcc(chords, 0.5, accesses, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Printf("ring+%-9d %v A=%.4f  %v A=%.4f  %.4f\n",
			chords,
			res.ACCOptimal.Assignment, res.ACCOptimal.Availability,
			res.SURVOptimal.Assignment, res.SURVOptimal.Availability,
			res.ACCofSURVChoice)
	}
}

func writeCSVFile(dir string, res experiments.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("topology-%d.csv", res.Spec.Chords))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, res); err != nil {
		return err
	}
	fmt.Printf("  (curves written to %s)\n", path)
	return nil
}

func printFigure(res experiments.FigureResult, step int) {
	fmt.Printf("\n%s — %s (availability vs read quorum, ACC metric)\n", res.Spec.ID, res.Name)
	fmt.Printf("%-6s", "q_r")
	for _, s := range res.Series {
		fmt.Printf("  α=%-5.2f", s.Alpha)
	}
	fmt.Println()
	n := len(res.Series[0].Avail)
	for qr := 1; qr <= n; qr++ {
		if qr != 1 && qr != n && (qr-1)%step != 0 {
			continue
		}
		fmt.Printf("%-6d", qr)
		for _, s := range res.Series {
			fmt.Printf("  %7.4f", s.Avail[qr-1])
		}
		fmt.Println()
	}
	for _, s := range res.Series {
		qr, a := s.Best()
		fmt.Printf("  optimum for α=%.2f: q_r=%d, q_w=%d, A=%.4f\n",
			s.Alpha, qr, 101-qr+1, a)
	}
}

func printChecks(res experiments.FigureResult) {
	c := experiments.CheckEndpoints(res)
	fmt.Printf("  §5.3 checks for %s:\n", res.Name)
	for i, alpha := range experiments.Alphas {
		fmt.Printf("    A(%.2f, 1) = %.4f (paper: 0.96·α = %.4f)\n",
			alpha, c.AtQR1[i], 0.96*alpha)
	}
	fmt.Printf("    convergence at q_r=50: spread %.4f (paper: curves coincide)\n", c.Spread)
	fmt.Printf("    endpoint optima: %d of %d curves (majority endpoint: %d)\n",
		c.EndpointOptima, c.Curves, c.MajorityOptima)
}

func printWriteConstraint(results []experiments.FigureResult) {
	for _, res := range results {
		if res.Spec.Chords != 2 {
			continue
		}
		row, err := experiments.WriteConstraint(res, 0.75, 0.20)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Printf("\n§5.4 write constraint on %s, α = 0.75:\n", res.Name)
		fmt.Printf("  unconstrained optimum: %v  A = %.4f (paper: q_r=1, A = 0.72)\n",
			row.Unconstrained.Assignment, row.Unconstrained.Availability)
		fmt.Printf("  with A_w ≥ %.0f%%:       %v  A = %.4f, write A = %.4f\n",
			row.MinWrite*100, row.Constrained.Assignment,
			row.Constrained.Availability, row.WriteAvailAtOpt)
		fmt.Printf("  (paper: q_r=28 yields A = 0.50 under the same constraint)\n")
		return
	}
	fmt.Println("\n§5.4 write constraint: run with -topology 2 or all topologies")
}

func printOptima(results []experiments.FigureResult) {
	fmt.Printf("\n§5.5 optima classification:\n")
	fmt.Printf("%-34s %-6s %-8s %-10s %-10s %s\n",
		"topology", "α", "best qr", "best A", "majority A", "class")
	counts := map[string]int{}
	for _, row := range experiments.OptimaTable(results) {
		fmt.Printf("%-34s %-6.2f %-8d %-10.4f %-10.4f %s\n",
			row.Topology, row.Alpha, row.BestQR, row.BestA, row.MajorityA, row.Class)
		counts[row.Class]++
	}
	fmt.Printf("summary: q_r=1: %d, majority: %d, interior: %d\n",
		counts["q_r=1"], counts["majority"], counts["interior"])
}
