package quorumkit

import (
	"quorumkit/internal/cluster"
	"quorumkit/internal/core"
	"quorumkit/internal/coterie"
	"quorumkit/internal/db"
	"quorumkit/internal/dist"
	"quorumkit/internal/graph"
	"quorumkit/internal/history"
	"quorumkit/internal/quorum"
	"quorumkit/internal/replica"
	"quorumkit/internal/sim"
	"quorumkit/internal/topo"
	"quorumkit/internal/trace"
	"quorumkit/internal/workload"
)

// Re-exported core types. The aliases expose the full method sets of the
// internal implementations as the library's public API.
type (
	// Assignment is a read/write quorum pair (q_r, q_w).
	Assignment = quorum.Assignment
	// VoteAssignment maps sites to vote counts.
	VoteAssignment = quorum.VoteAssignment
	// Coterie is a set of pairwise-intersecting minimal quorum groups.
	Coterie = quorum.Coterie
	// PMF is a probability mass function over component vote counts.
	PMF = dist.PMF
	// Model is the availability model of the paper's Figure 1.
	Model = core.Model
	// Result is the outcome of a quorum optimization.
	Result = core.Result
	// Estimator approximates per-site component-size densities on-line.
	Estimator = core.Estimator
	// Graph is an immutable network of sites and links.
	Graph = graph.Graph
	// NetworkState tracks live sites/links and connected components.
	NetworkState = graph.State
	// SimParams are the stochastic parameters of the simulator.
	SimParams = sim.Params
	// Simulator is the discrete-event partition simulator.
	Simulator = sim.Simulator
	// Object is a replicated data object under quorum consensus with
	// dynamic quorum reassignment.
	Object = replica.Object
	// Manager drives dynamic quorum reassignment from on-line estimates.
	Manager = replica.Manager
	// Database is a collection of replicated objects over one network.
	Database = db.Database
	// Cluster is the deterministic message-level protocol runtime.
	Cluster = cluster.Cluster
	// AsyncCluster is the concurrent (goroutine-per-node) runtime.
	AsyncCluster = cluster.Async
	// CoterieSystem is a general read/write coterie pair.
	CoterieSystem = coterie.System
	// HistoryLog records operations for one-copy serializability checking.
	HistoryLog = history.Log
	// Trace is a serializable failure/repair schedule.
	Trace = trace.Trace
	// WorkloadPattern maps time to the instantaneous read fraction α(t).
	WorkloadPattern = workload.Pattern
)

// Majority returns the majority consensus assignment for vote total T.
func Majority(T int) Assignment { return quorum.Majority(T) }

// ReadOneWriteAll returns the ROWA assignment (q_r=1, q_w=T).
func ReadOneWriteAll(T int) Assignment { return quorum.ReadOneWriteAll(T) }

// ForReadQuorum returns the paper's family member (q_r, T−q_r+1).
func ForReadQuorum(qr, T int) Assignment { return quorum.ForReadQuorum(qr, T) }

// RingDensity returns the closed-form component-size density f(v) for a
// ring of n sites with site reliability p and link reliability r (§4.2).
func RingDensity(n int, p, r float64) PMF { return dist.Ring(n, p, r) }

// CompleteDensity returns the closed-form density for a fully-connected
// network, using Gilbert's Rel(m, r) recursion (§4.2).
func CompleteDensity(n int, p, r float64) PMF { return dist.Complete(n, p, r) }

// BusDensity returns the single-bus density; killsSites selects the design
// in which no site functions while the bus is down (§4.2).
func BusDensity(n int, p, r float64, killsSites bool) PMF {
	if killsSites {
		return dist.BusKillsSites(n, p, r)
	}
	return dist.BusIndependentSites(n, p, r)
}

// RingHeteroDensities returns exact per-site densities for a ring with
// heterogeneous site reliabilities ps and link reliabilities rs
// (rs[i] is the link between sites i and i+1 mod n) — the generalization
// of the paper's closed form to asymmetric deployments.
func RingHeteroDensities(ps, rs []float64) []PMF { return dist.RingHetero(ps, rs) }

// ModelFromDensity builds an availability model for the symmetric case in
// which every site shares the density f and accesses are uniform.
func ModelFromDensity(f PMF) (Model, error) { return core.ModelFromSingleDensity(f) }

// NewModel builds an availability model from per-site densities and access
// weight vectors (nil for uniform) — step 2 of the paper's Figure 1.
func NewModel(rWeights, wWeights []float64, f []PMF) (Model, error) {
	return core.NewModel(rWeights, wWeights, f)
}

// NewEstimator creates an on-line density estimator for n sites and vote
// total T (§4.2).
func NewEstimator(n, T int) *Estimator { return core.NewEstimator(n, T) }

// Ring, Complete and PaperTopology construct study networks.
func Ring(n int) *Graph { return graph.Ring(n) }

// Complete returns the complete graph on n sites.
func Complete(n int) *Graph { return graph.Complete(n) }

// PaperTopology returns the paper's "Topology i": a 101-site ring with
// i ∈ {0,1,2,4,16,256,4949} chords.
func PaperTopology(chords int) *Graph { return topo.Paper(chords) }

// NewNetworkState returns an all-up network state over g; votes may be nil
// for one vote per site.
func NewNetworkState(g *Graph, votes []int) *NetworkState { return graph.NewState(g, votes) }

// PaperParams returns the paper's simulation parameters (μ_t = 1,
// ρ = 1/128, 96% component reliability).
func PaperParams() SimParams { return sim.PaperParams() }

// NewSimulator creates a discrete-event partition simulator.
func NewSimulator(g *Graph, votes []int, p SimParams, seed uint64) *Simulator {
	return sim.New(g, votes, p, seed)
}

// NewObject creates a replicated object over a network state with an
// initial quorum assignment (version 1).
func NewObject(st *NetworkState, initial Assignment) (*Object, error) {
	return replica.NewObject(st, initial)
}

// NewManager creates a dynamic quorum reassignment manager (§4.3) for the
// object, driven by the estimator and read fraction α.
func NewManager(obj *Object, est *Estimator, alpha float64) *Manager {
	return replica.NewManager(obj, est, alpha)
}

// NewDatabase creates a multi-object database over a network state.
func NewDatabase(st *NetworkState) *Database { return db.New(st) }

// NewCluster creates the deterministic message-level runtime.
func NewCluster(st *NetworkState, initial Assignment) (*Cluster, error) {
	return cluster.New(st, initial)
}

// NewAsyncCluster creates the concurrent runtime (one goroutine per node).
// Call Close when done.
func NewAsyncCluster(st *NetworkState, initial Assignment) (*AsyncCluster, error) {
	return cluster.NewAsync(st, initial)
}

// GridCoterie returns the grid protocol coterie system for rows×cols sites.
func GridCoterie(rows, cols int) (CoterieSystem, error) { return coterie.Grid(rows, cols) }

// GenerateTrace draws a failure/repair schedule with the paper's renewal
// model over [0, horizon).
func GenerateTrace(n, m int, failMean, repairMean, horizon float64, seed uint64) *Trace {
	return trace.Generate(n, m, failMean, repairMean, horizon, seed)
}

// CollectModel simulates the topology with the paper's parameters for
// approximately the given number of accesses (time-weighted estimation)
// and returns the fitted availability model. It is the one-call form of
// the paper's pipeline: simulate → estimate f_i on-line → Figure 1.
func CollectModel(g *Graph, accesses int64, seed uint64) (Model, error) {
	m, _, err := sim.Collect(g, nil, sim.PaperParams(), sim.CollectConfig{
		Mode:     sim.TimeWeighted,
		Accesses: accesses,
		Warmup:   accesses / 20,
		Seed:     seed,
	})
	return m, err
}
